#include "spice/solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "flow/cancel.hpp"
#include "spice/fault.hpp"
#include "spice/stats.hpp"
#include "spice/workspace.hpp"
#include "util/strings.hpp"

namespace rw::spice {

namespace {

std::atomic<double>& watchdog_slot() {
  static std::atomic<double> ms{[] {
    if (const char* env = std::getenv("RW_SOLVE_WATCHDOG_MS"); env != nullptr && *env != '\0') {
      char* end = nullptr;
      const double v = std::strtod(env, &end);
      if (end != env && v > 0.0) return v;
    }
    return 0.0;
  }()};
  return ms;
}

}  // namespace

double solve_watchdog_ms() { return watchdog_slot().load(std::memory_order_relaxed); }

void set_solve_watchdog_ms(double ms) { watchdog_slot().store(ms, std::memory_order_relaxed); }

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy p;
  if (const char* env = std::getenv("RW_CHAR_MAX_RETRIES"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 0) p.max_retries = static_cast<int>(n);
  }
  return p;
}

namespace {

std::string compose_solver_message(const std::string& stage, const std::string& detail,
                                   const std::string& node, double time_ps, int iterations,
                                   int n_unknowns, const std::vector<SolveAttempt>& attempts) {
  std::ostringstream os;
  os << "spice " << stage << " solve failed: " << detail << " [";
  if (!node.empty()) os << "node=" << node << ", ";
  os << "t=" << util::format_fixed(time_ps, 3) << " ps, newton_iters=" << iterations
     << ", unknowns=" << n_unknowns << "]";
  for (const auto& a : attempts) {
    os << "\n  attempt " << a.attempt << " [" << a.settings << "]: " << a.outcome;
  }
  return os.str();
}

}  // namespace

SolverError::SolverError(std::string stage, std::string detail, std::string node, double time_ps,
                         int iterations, int n_unknowns, std::vector<SolveAttempt> attempts)
    : std::runtime_error(compose_solver_message(stage, detail, node, time_ps, iterations,
                                                n_unknowns, attempts)),
      stage_(std::move(stage)),
      detail_(std::move(detail)),
      node_(std::move(node)),
      time_ps_(time_ps),
      iterations_(iterations),
      n_unknowns_(n_unknowns),
      attempts_(std::move(attempts)) {}

namespace {

/// Set by the fault injector for the duration of one transient attempt:
/// every residual evaluation is poisoned with NaN, which the Newton loop
/// must detect and treat as non-convergence (never as success).
thread_local bool t_poison_residuals = false;

/// Damped Newton driver over a cached `SolverWorkspace`. One instance per
/// solve; it borrows the per-thread workspace for the circuit topology and
/// reuses its stamped-system and scratch buffers, so an iteration performs
/// no heap allocation and exactly one analytic stamp + refactorization
/// (instead of the seed solver's n_unknowns+1 finite-difference residual
/// sweeps and from-scratch dense assembly).
class NewtonDriver {
 public:
  NewtonDriver(const Circuit& circuit, const TransientOptions& options)
      : circuit_(circuit), options_(options), ws_(workspace_for(circuit)) {
    for (const auto& src : circuit.sources()) {
      for (const auto& [t, v] : src.waveform.points()) vmax_ = std::max(vmax_, std::fabs(v));
    }
  }

  [[nodiscard]] int n_unknowns() const { return ws_.n_unknowns(); }
  [[nodiscard]] SolverWorkspace& ws() { return ws_; }
  [[nodiscard]] double vmax_v() const { return vmax_; }

  /// Name of the circuit node behind unknown row `u` ("?" when unmapped).
  [[nodiscard]] std::string unknown_node_name(int u) const {
    for (NodeId n = 0; n < circuit_.node_count(); ++n) {
      if (ws_.unknown_index()[static_cast<std::size_t>(n)] == u) return circuit_.node_name(n);
    }
    return "?";
  }

  /// Detail of the most recent `newton` failure (singular matrix, NaN
  /// residual, plain iteration exhaustion). Valid after newton returned
  /// false; NewtonDriver is used single-threaded per solve.
  [[nodiscard]] const std::string& last_failure() const { return last_failure_; }
  /// Node with the worst residual when the last newton failed ("" if n/a).
  [[nodiscard]] const std::string& last_failure_node() const { return last_failure_node_; }

  void scatter(const std::vector<double>& x, double t_ps, double source_scale,
               std::vector<double>& v_full) const {
    ws_.scatter(circuit_, x, t_ps, source_scale, v_full);
  }

  /// Damped Newton solve. `stamp_extra(v_full)` adds the dynamic part of the
  /// residual/Jacobian (capacitors, homotopy caps) on top of the static
  /// stamp; pass a no-op for DC. Returns true on convergence, updating x. On
  /// failure, `last_failure()`/`last_failure_node()` describe what went
  /// wrong (iteration exhaustion, singular Jacobian row, non-finite
  /// residual).
  template <typename StampExtra>
  bool newton(std::vector<double>& x, double t_ps, double source_scale, StampExtra&& stamp_extra,
              int max_iterations) {
    if (ws_.n_unknowns() == 0) return true;
    const auto n = static_cast<std::size_t>(ws_.n_unknowns());
    constexpr double kMaxStep = 0.3;  // volts, Newton damping limit

    last_failure_.clear();
    last_failure_node_.clear();
    for (int iter = 0; iter < max_iterations; ++iter) {
      stats::add_newton_iterations(1);
      ws_.scatter(circuit_, x, t_ps, source_scale, v_full_);
      ws_.begin_stamp();
      ws_.stamp_static(circuit_, v_full_, options_.gmin_ma_per_v);
      stamp_extra(v_full_);
      if (t_poison_residuals) ws_.poison_residual();  // armed fault injection

      int worst = 0;
      const double fmax = ws_.residual_max(worst);
      if (!std::isfinite(fmax)) {
        // A poisoned or overflowed residual must never satisfy the
        // convergence test below (NaN comparisons are all false, which
        // would otherwise leave fmax at 0 and "converge" on garbage).
        record_failure("non-finite residual", worst, t_ps);
        return false;
      }

      try {
        ws_.solve_newton_step(dx_);
      } catch (const SingularRow& s) {
        record_failure("singular matrix at row " + std::to_string(s.row), s.row, t_ps);
        return false;
      }

      // Per-node voltage limiting (as SPICE does): a near-singular direction
      // (e.g. a floating node between off transistors) must not stall the
      // whole update. Also clamp to physical bounds — CMOS nodes cannot
      // leave the rail window, and wandering flattens the exponentials.
      double step_max = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double delta = std::clamp(dx_[i], -kMaxStep, kMaxStep);
        const double next = std::clamp(x[i] + delta, -0.5, vmax_ + 0.5);
        step_max = std::max(step_max, std::fabs(next - x[i]));
        x[i] = next;
      }
      if (!std::isfinite(step_max)) {
        record_failure("non-finite Newton update", worst, t_ps);
        return false;
      }

      if (fmax < options_.tol_i_ma && step_max < options_.tol_v) return true;
      if (std::getenv("RW_SPICE_DEBUG") != nullptr && iter > max_iterations - 6) {
        std::fprintf(stderr, "newton iter %d: fmax=%.3e step=%.3e x0=%.4f\n", iter, fmax,
                     step_max, x.empty() ? 0.0 : x[0]);
      }
      if (iter + 1 == max_iterations) {
        record_failure("Newton exhausted " + std::to_string(max_iterations) +
                           " iterations (|f|max=" + std::to_string(fmax) + " mA)",
                       worst, t_ps);
      }
    }
    return false;
  }

 private:
  void record_failure(const std::string& what, int row, double t_ps) {
    last_failure_node_ = unknown_node_name(row);
    last_failure_ = what + " (node " + last_failure_node_ + ", t=" +
                    util::format_fixed(t_ps, 3) + " ps, " + std::to_string(ws_.n_unknowns()) +
                    " unknowns, " + std::to_string(circuit_.mosfets().size()) + " mosfets)";
  }

  const Circuit& circuit_;
  const TransientOptions& options_;
  SolverWorkspace& ws_;
  double vmax_ = 1.2;
  std::string last_failure_;
  std::string last_failure_node_;
  std::vector<double> v_full_;
  std::vector<double> dx_;
};

constexpr auto kNoExtraStamp = [](const std::vector<double>&) {};

/// DC solve with the escalation chain: direct Newton -> source stepping ->
/// pseudo-transient homotopy. `ramp_sources_first` (the retry ladder's
/// source-ramping rung) skips the direct attempt and goes straight to a
/// finer source ramp, which converges on circuits whose direct solve
/// wanders.
std::vector<double> solve_dc(const Circuit& circuit, double t_ps, const TransientOptions& options,
                             bool ramp_sources_first = false) {
  stats::add_dc_solve();
  NewtonDriver sys(circuit, options);
  std::vector<double> x(static_cast<std::size_t>(sys.n_unknowns()), 0.0);
  // Initial guess: half of the largest source magnitude (≈ Vdd/2).
  double vmax = 0.0;
  for (const auto& src : circuit.sources()) {
    vmax = std::max(vmax, std::fabs(src.waveform.value(t_ps)));
  }
  std::fill(x.begin(), x.end(), 0.5 * vmax);

  bool converged = false;
  if (!ramp_sources_first) converged = sys.newton(x, t_ps, 1.0, kNoExtraStamp, 200);
  if (!converged) {
    // Source stepping: ramp supplies to 100%, warm-starting Newton. The
    // ladder's source-ramping rung uses a finer 5% grid.
    const int steps = ramp_sources_first ? 20 : 10;
    std::fill(x.begin(), x.end(), 0.0);
    converged = true;
    for (int step = 1; step <= steps && converged; ++step) {
      converged = sys.newton(x, t_ps, static_cast<double>(step) / steps, kNoExtraStamp, 200);
    }
  }
  if (!converged) {
    // Pseudo-transient homotopy: virtual capacitors on every unknown node,
    // integrated from 0 V with a growing timestep until steady state. Damped
    // Newton converges on each small step even for the feedback structures
    // (XOR trees, latch loops) that defeat the direct solve.
    std::fill(x.begin(), x.end(), 0.0);
    std::vector<double> x_prev = x;
    constexpr double kVirtualCapFf = 10.0;
    double dt = 0.5;  // ps
    converged = false;
    for (int step = 0; step < 400; ++step) {
      const std::vector<double> x_before = x;
      // Note: the stamp reads `x` through the closure as Newton updates it,
      // so the capacitor current uses the trial voltage, as BE requires.
      const auto pt_stamp = [&](const std::vector<double>&) {
        sys.ws().stamp_virtual_caps(x, x_prev, kVirtualCapFf, dt);
      };
      if (!sys.newton(x, t_ps, 1.0, pt_stamp, 60)) {
        x = x_before;
        dt *= 0.5;
        if (dt < 1e-3) break;
        continue;
      }
      double dv = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) dv = std::max(dv, std::fabs(x[i] - x_prev[i]));
      x_prev = x;
      dt = std::min(dt * 1.6, 100.0);
      if (dv < 1e-7 && step > 3) {
        converged = true;
        break;
      }
    }
    // Final verification with the true static residual.
    if (converged) converged = sys.newton(x, t_ps, 1.0, kNoExtraStamp, 100);
  }
  if (!converged) {
    std::string detail = "Newton failed to converge even with source stepping and homotopy";
    if (!sys.last_failure().empty()) detail += "; last: " + sys.last_failure();
    throw SolverError("dc", detail, sys.last_failure_node(), t_ps, 200, sys.n_unknowns());
  }

  std::vector<double> v_full;
  sys.scatter(x, t_ps, 1.0, v_full);
  return v_full;
}

/// Warm-started DC: polish a seed node-voltage vector with a full-tolerance
/// Newton solve. Returns the polished full solution, or empty if the seed
/// did not converge (caller falls back to the cold escalation chain). The
/// polish budget is deliberately small — a good seed converges in a couple
/// of iterations, and a bad one should fail fast rather than wander.
std::vector<double> polish_dc_seed(const Circuit& circuit, double t_ps,
                                   const TransientOptions& options,
                                   const std::vector<double>& seed) {
  NewtonDriver sys(circuit, options);
  std::vector<double> x(static_cast<std::size_t>(sys.n_unknowns()), 0.0);
  for (NodeId node = 0; node < circuit.node_count(); ++node) {
    const int u = sys.ws().unknown_index()[static_cast<std::size_t>(node)];
    if (u >= 0) x[static_cast<std::size_t>(u)] = seed[static_cast<std::size_t>(node)];
  }
  if (!sys.newton(x, t_ps, 1.0, kNoExtraStamp, 25)) return {};
  std::vector<double> v_full;
  sys.scatter(x, t_ps, 1.0, v_full);
  return v_full;
}

/// RAII poison flag for the NaN-residual injection mode.
struct PoisonGuard {
  explicit PoisonGuard(bool enable) : armed(enable) {
    if (armed) t_poison_residuals = true;
  }
  ~PoisonGuard() {
    if (armed) t_poison_residuals = false;
  }
  PoisonGuard(const PoisonGuard&) = delete;
  PoisonGuard& operator=(const PoisonGuard&) = delete;
  bool armed;
};

/// One transient attempt at fixed options (one rung of the retry ladder).
TransientResult simulate_transient_once(const Circuit& circuit, const TransientOptions& options,
                                        const std::vector<NodeId>& probes,
                                        bool ramp_sources_first) {
  stats::add_transient_attempt();
  NewtonDriver sys(circuit, options);

  // Fault injection hook: inert (one relaxed atomic load) unless armed.
  FaultInjector::Action action = FaultInjector::Action::kNone;
  if (FaultInjector::instance().armed()) {
    action = FaultInjector::instance().on_solve_attempt(FaultInjector::current_context());
  }
  if (action == FaultInjector::Action::kFailConvergence) {
    throw SolverError("transient", "fault injection: forced convergence failure", "", 0.0,
                      options.max_newton, sys.n_unknowns());
  }
  const PoisonGuard poison(action == FaultInjector::Action::kNanResidual);

  // Per-attempt wall-clock watchdog: a hung attempt becomes a rung failure.
  const auto attempt_start = std::chrono::steady_clock::now();
  const double watchdog =
      options.watchdog_ms != 0.0 ? std::max(options.watchdog_ms, 0.0) : solve_watchdog_ms();
  const auto elapsed_ms = [&attempt_start] {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     attempt_start)
        .count();
  };

  if (action == FaultInjector::Action::kStall) {
    // Injected hang: sleep in small slices so the watchdog and cancellation
    // polls stay responsive, exactly as a real stuck solve would be handled.
    const double stall = FaultInjector::instance().stall_ms();
    while (elapsed_ms() < stall) {
      flow::throw_if_cancelled();
      if (watchdog > 0.0 && elapsed_ms() > watchdog) {
        throw SolverError("transient",
                          "watchdog: attempt exceeded " + util::format_fixed(watchdog, 1) +
                              " ms wall-clock (injected stall)",
                          "", 0.0, 0, sys.n_unknowns());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  TransientResult result(probes, circuit.node_count());

  // t=0 operating point: polish the caller's warm-start seed when one is
  // supplied (and not poisoned — a NaN residual would just burn the polish
  // budget), falling back to the cold escalation chain.
  std::vector<double> v_prev_full;
  if (options.initial_state != nullptr && !poison.armed &&
      options.initial_state->size() == static_cast<std::size_t>(circuit.node_count())) {
    v_prev_full = polish_dc_seed(circuit, 0.0, options, *options.initial_state);
    if (v_prev_full.empty()) {
      stats::add_warm_start_miss();
    } else {
      stats::add_warm_start_hit();
    }
  }
  if (v_prev_full.empty()) {
    v_prev_full = solve_dc(circuit, 0.0, options, ramp_sources_first);
  }
  result.record(0.0, v_prev_full);

  // Unknown vector from the DC solution.
  const auto n = static_cast<std::size_t>(sys.n_unknowns());
  std::vector<double> x(n, 0.0);
  for (NodeId node = 0; node < circuit.node_count(); ++node) {
    const int u = sys.ws().unknown_index()[static_cast<std::size_t>(node)];
    if (u >= 0) x[static_cast<std::size_t>(u)] = v_prev_full[static_cast<std::size_t>(node)];
  }

  double t = 0.0;
  double dt = options.dt_initial_ps;
  std::vector<double> v_full;
  std::vector<double> x_try;
  std::vector<double> x_base;  // previous accepted step, for the predictor
  double dt_prev = 0.0;
  while (t < options.t_stop_ps - 1e-9) {
    if (watchdog > 0.0 && elapsed_ms() > watchdog) {
      throw SolverError("transient",
                        "watchdog: attempt exceeded " + util::format_fixed(watchdog, 1) +
                            " ms wall-clock",
                        sys.last_failure_node(), t, 0, sys.n_unknowns());
    }
    // Never step across a source breakpoint; land on it exactly.
    double dt_eff = std::min(dt, options.t_stop_ps - t);
    for (const auto& src : circuit.sources()) {
      if (const auto bp = src.waveform.next_breakpoint(t)) {
        if (*bp - t > 1e-9) dt_eff = std::min(dt_eff, *bp - t);
      }
    }

    const double t_next = t + dt_eff;
    x_try = x;
    // Linear predictor: extrapolate the Newton guess from the previous
    // accepted step. Newton still converges to the same tolerances from any
    // guess — the predictor only cuts how many iterations that takes.
    if (dt_prev > 0.0) {
      const double r = dt_eff / dt_prev;
      for (std::size_t i = 0; i < n; ++i) {
        x_try[i] = std::clamp(x[i] + r * (x[i] - x_base[i]), -0.5, sys.vmax_v() + 0.5);
      }
    }
    const auto cap_stamp = [&](const std::vector<double>& vf) {
      sys.ws().stamp_capacitors(circuit, vf, v_prev_full, dt_eff);
    };
    const bool converged = sys.newton(x_try, t_next, 1.0, cap_stamp, options.max_newton);
    if (!converged) {
      if (dt_eff <= options.dt_min_ps * 1.0001) {
        std::string detail = "Newton failed at minimum timestep dt=" +
                             util::format_fixed(dt_eff, 4) + " ps";
        if (!sys.last_failure().empty()) detail += "; " + sys.last_failure();
        throw SolverError("transient", detail, sys.last_failure_node(), t_next,
                          options.max_newton, sys.n_unknowns());
      }
      dt = std::max(options.dt_min_ps, dt_eff * 0.25);
      continue;
    }

    // Accept the step.
    double dv_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) dv_max = std::max(dv_max, std::fabs(x_try[i] - x[i]));
    x_base = x;
    dt_prev = dt_eff;
    x = x_try;
    sys.scatter(x, t_next, 1.0, v_full);
    v_prev_full = v_full;
    t = t_next;
    result.record(t, v_full);

    // Timestep control: aim for dv_target per step.
    double grow = 2.0;
    if (dv_max > 1e-12) grow = std::clamp(options.dv_target_v / dv_max, 0.4, 2.0);
    dt = std::clamp(dt_eff * grow, options.dt_min_ps, options.dt_max_ps);

    // Settled-tail early exit: once every source is past its final
    // breakpoint and a full dt_max step moved no node by more than 10 nV,
    // the rest of the window is a flat exponential tail orders of magnitude
    // below measurement resolution. Recording the final sample at t_stop
    // yields the same (linearly interpolated) waveform without stepping
    // through it. Purely time-driven — bitwise identical for any thread
    // count, and characterization windows are sized with generous margins
    // past the last output transition.
    if (dv_max < 1e-8 && dt_eff >= options.dt_max_ps * (1.0 - 1e-9)) {
      bool breakpoints_ahead = false;
      for (const auto& src : circuit.sources()) {
        if (src.waveform.next_breakpoint(t)) {
          breakpoints_ahead = true;
          break;
        }
      }
      if (!breakpoints_ahead) {
        if (options.t_stop_ps - t > 1e-9) result.record(options.t_stop_ps, v_full);
        break;
      }
    }
  }
  return result;
}

/// Effective options for one rung of the retry ladder; rung 0 is the
/// caller's options verbatim (fault-free runs are bitwise identical to a
/// ladder-free solver).
struct LadderRung {
  TransientOptions options;
  bool ramp_sources = false;
  std::string settings;
};

LadderRung ladder_rung(const TransientOptions& base, int rung) {
  LadderRung r;
  r.options = base;
  if (rung >= 1) {
    const double shrink = std::pow(base.retry.dt_shrink, rung);
    r.options.dt_initial_ps = base.dt_initial_ps * shrink;
    r.options.dt_min_ps = base.dt_min_ps * shrink;
    r.options.max_newton = base.max_newton * 2;
    // Relaxation rungs run cold: the warm seed already failed to help on
    // rung 0, and the ladder exists to change the numerics, not repeat them.
    r.options.initial_state = nullptr;
  }
  if (rung >= 2) r.options.gmin_ma_per_v = base.gmin_ma_per_v * base.retry.gmin_boost;
  if (rung >= 3 && base.retry.source_ramp) r.ramp_sources = true;
  std::ostringstream os;
  os << "dt_initial=" << util::format_fixed(r.options.dt_initial_ps, 5)
     << "ps dt_min=" << util::format_fixed(r.options.dt_min_ps, 6)
     << "ps gmin=" << r.options.gmin_ma_per_v << "mA/V newton=" << r.options.max_newton
     << (r.ramp_sources ? " source-ramp" : "");
  r.settings = os.str();
  return r;
}

}  // namespace

TransientResult::TransientResult(std::vector<NodeId> probes, int node_count)
    : probes_(std::move(probes)), waveforms_(probes_.size()) {
  final_.assign(static_cast<std::size_t>(node_count), 0.0);
}

const Waveform& TransientResult::waveform(NodeId node) const {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i] == node) return waveforms_[i];
  }
  throw std::out_of_range("TransientResult: node was not probed");
}

void TransientResult::record(double t_ps, const std::vector<double>& node_voltages) {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    waveforms_[i].append(t_ps, node_voltages[static_cast<std::size_t>(probes_[i])]);
  }
  final_ = node_voltages;
}

double TransientResult::final_voltage(NodeId node) const {
  return final_[static_cast<std::size_t>(node)];
}

std::vector<double> dc_operating_point(const Circuit& circuit, double t_ps,
                                       const TransientOptions& options) {
  return solve_dc(circuit, t_ps, options);
}

TransientResult simulate_transient(const Circuit& circuit, const TransientOptions& options,
                                   const std::vector<NodeId>& probes) {
  std::vector<SolveAttempt> history;
  const int rungs = 1 + std::max(0, options.retry.max_retries);
  for (int k = 0; k < rungs; ++k) {
    const LadderRung rung = ladder_rung(options, k);
    try {
      return simulate_transient_once(circuit, rung.options, probes, rung.ramp_sources);
    } catch (const SolverError& e) {
      history.push_back(SolveAttempt{k, rung.settings, e.detail()});
      if (k + 1 == rungs) {
        throw SolverError("transient",
                          "retry ladder exhausted after " + std::to_string(rungs) +
                              " attempt(s); last failure: " + e.detail(),
                          e.node(), e.time_ps(), e.iterations(), e.n_unknowns(),
                          std::move(history));
      }
    }
  }
  // Unreachable: the loop either returns or throws on its last rung.
  throw SolverError("transient", "retry ladder logic error", "", 0.0, 0, 0);
}

}  // namespace rw::spice
