#include "spice/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rw::spice {

namespace {

/// Solves A x = b in place by LU with partial pivoting (A row-major n×n).
/// \throws std::runtime_error on a numerically singular matrix.
void solve_dense(std::vector<double>& a, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::fabs(a[static_cast<std::size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double cand = std::fabs(a[static_cast<std::size_t>(r) * n + col]);
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-30) throw std::runtime_error("solve_dense: singular matrix");
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a[static_cast<std::size_t>(pivot) * n + c],
                  a[static_cast<std::size_t>(col) * n + c]);
      }
      std::swap(b[static_cast<std::size_t>(pivot)], b[static_cast<std::size_t>(col)]);
    }
    const double diag = a[static_cast<std::size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double factor = a[static_cast<std::size_t>(r) * n + col] / diag;
      if (factor == 0.0) continue;
      a[static_cast<std::size_t>(r) * n + col] = 0.0;
      for (int c = col + 1; c < n; ++c) {
        a[static_cast<std::size_t>(r) * n + c] -= factor * a[static_cast<std::size_t>(col) * n + c];
      }
      b[static_cast<std::size_t>(r)] -= factor * b[static_cast<std::size_t>(col)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c) {
      sum -= a[static_cast<std::size_t>(r) * n + c] * b[static_cast<std::size_t>(c)];
    }
    b[static_cast<std::size_t>(r)] = sum / a[static_cast<std::size_t>(r) * n + r];
  }
}

/// Shared machinery for DC and transient Newton solves.
class NodalSystem {
 public:
  NodalSystem(const Circuit& circuit, const TransientOptions& options)
      : circuit_(circuit), options_(options) {
    unknown_index_.assign(static_cast<std::size_t>(circuit.node_count()), -1);
    for (NodeId n = 0; n < circuit.node_count(); ++n) {
      if (!circuit.is_sourced(n)) {
        unknown_index_[static_cast<std::size_t>(n)] = n_unknowns_++;
      }
    }
    for (const auto& src : circuit.sources()) {
      for (const auto& [t, v] : src.waveform.points()) vmax_ = std::max(vmax_, std::fabs(v));
    }
  }

  [[nodiscard]] int n_unknowns() const { return n_unknowns_; }

  /// Full node-voltage vector with sources evaluated at time t and unknowns
  /// taken from x.
  void scatter(const std::vector<double>& x, double t_ps, double source_scale,
               std::vector<double>& v_full) const {
    v_full.assign(static_cast<std::size_t>(circuit_.node_count()), 0.0);
    for (const auto& src : circuit_.sources()) {
      v_full[static_cast<std::size_t>(src.node)] = source_scale * src.waveform.value(t_ps);
    }
    for (NodeId n = 0; n < circuit_.node_count(); ++n) {
      const int u = unknown_index_[static_cast<std::size_t>(n)];
      if (u >= 0) v_full[static_cast<std::size_t>(n)] = x[static_cast<std::size_t>(u)];
    }
  }

  /// Static (resistive + device + gmin) residual: f[u] = sum of currents
  /// entering unknown node u. Capacitor currents are added by the caller in
  /// transient mode.
  void static_residual(const std::vector<double>& v_full, std::vector<double>& f) const {
    f.assign(static_cast<std::size_t>(n_unknowns_), 0.0);
    for (const auto& m : circuit_.mosfets()) {
      const double id = m.model.drain_current_ma(v_full[static_cast<std::size_t>(m.gate)],
                                                 v_full[static_cast<std::size_t>(m.drain)],
                                                 v_full[static_cast<std::size_t>(m.source)]);
      add_current(f, m.drain, -id);
      add_current(f, m.source, +id);
    }
    for (const auto& r : circuit_.resistors()) {
      const double i_ab =
          (v_full[static_cast<std::size_t>(r.a)] - v_full[static_cast<std::size_t>(r.b)]) / r.kohm;
      add_current(f, r.a, -i_ab);
      add_current(f, r.b, +i_ab);
    }
    // gmin leak to ground on every unknown node for conditioning.
    for (NodeId n = 0; n < circuit_.node_count(); ++n) {
      const int u = unknown_index_[static_cast<std::size_t>(n)];
      if (u >= 0) {
        f[static_cast<std::size_t>(u)] -=
            options_.gmin_ma_per_v * v_full[static_cast<std::size_t>(n)];
      }
    }
  }

  /// Residual including backward-Euler capacitor currents:
  ///   i_cap = C * ((va1-vb1) - (va0-vb0)) / dt, flowing a->b.
  void transient_residual(const std::vector<double>& v_full, const std::vector<double>& v_prev_full,
                          double dt_ps, std::vector<double>& f) const {
    static_residual(v_full, f);
    for (const auto& c : circuit_.capacitors()) {
      const double dv_now =
          v_full[static_cast<std::size_t>(c.a)] - v_full[static_cast<std::size_t>(c.b)];
      const double dv_prev =
          v_prev_full[static_cast<std::size_t>(c.a)] - v_prev_full[static_cast<std::size_t>(c.b)];
      const double i_ab = c.cap_ff * (dv_now - dv_prev) / dt_ps;  // fF*V/ps = mA
      add_current(f, c.a, -i_ab);
      add_current(f, c.b, +i_ab);
    }
  }

  /// Damped Newton solve; residual_fn(v_full, f) must fill f for the current
  /// full voltage vector. Returns true on convergence, updating x.
  template <typename ResidualFn>
  bool newton(std::vector<double>& x, double t_ps, double source_scale, ResidualFn&& residual_fn,
              int max_iterations) const {
    if (n_unknowns_ == 0) return true;
    const auto n = static_cast<std::size_t>(n_unknowns_);
    std::vector<double> v_full;
    std::vector<double> f(n);
    std::vector<double> f_pert(n);
    std::vector<double> jac(n * n);
    std::vector<double> rhs(n);
    constexpr double kPerturb = 1e-5;  // volts
    constexpr double kMaxStep = 0.3;   // volts, Newton damping limit

    for (int iter = 0; iter < max_iterations; ++iter) {
      scatter(x, t_ps, source_scale, v_full);
      residual_fn(v_full, f);
      double fmax = 0.0;
      for (double fi : f) fmax = std::max(fmax, std::fabs(fi));

      // Assemble Jacobian column by column (forward differences).
      for (std::size_t j = 0; j < n; ++j) {
        const double saved = x[j];
        x[j] = saved + kPerturb;
        scatter(x, t_ps, source_scale, v_full);
        residual_fn(v_full, f_pert);
        x[j] = saved;
        for (std::size_t i = 0; i < n; ++i) {
          jac[i * n + j] = (f_pert[i] - f[i]) / kPerturb;
        }
      }
      for (std::size_t i = 0; i < n; ++i) rhs[i] = -f[i];
      std::vector<double> lu = jac;
      solve_dense(lu, rhs, n_unknowns_);

      // Per-node voltage limiting (as SPICE does): a near-singular direction
      // (e.g. a floating node between off transistors) must not stall the
      // whole update. Also clamp to physical bounds — CMOS nodes cannot
      // leave the rail window, and wandering flattens the exponentials.
      double step_max = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double delta = std::clamp(rhs[i], -kMaxStep, kMaxStep);
        const double next = std::clamp(x[i] + delta, -0.5, vmax_ + 0.5);
        step_max = std::max(step_max, std::fabs(next - x[i]));
        x[i] = next;
      }

      if (fmax < options_.tol_i_ma && step_max < options_.tol_v) return true;
      if (std::getenv("RW_SPICE_DEBUG") != nullptr && iter > max_iterations - 6) {
        std::fprintf(stderr, "newton iter %d: fmax=%.3e step=%.3e x0=%.4f\n", iter, fmax,
                     step_max, x.empty() ? 0.0 : x[0]);
      }
    }
    return false;
  }

  [[nodiscard]] const std::vector<int>& unknown_index() const { return unknown_index_; }

 private:
  void add_current(std::vector<double>& f, NodeId node, double i_ma) const {
    const int u = unknown_index_[static_cast<std::size_t>(node)];
    if (u >= 0) f[static_cast<std::size_t>(u)] += i_ma;
  }

  const Circuit& circuit_;
  const TransientOptions& options_;
  std::vector<int> unknown_index_;
  int n_unknowns_ = 0;
  double vmax_ = 1.2;
};

std::vector<double> solve_dc(const Circuit& circuit, double t_ps, const TransientOptions& options) {
  NodalSystem sys(circuit, options);
  std::vector<double> x(static_cast<std::size_t>(sys.n_unknowns()), 0.0);
  // Initial guess: half of the largest source magnitude (≈ Vdd/2).
  double vmax = 0.0;
  for (const auto& src : circuit.sources()) {
    vmax = std::max(vmax, std::fabs(src.waveform.value(t_ps)));
  }
  std::fill(x.begin(), x.end(), 0.5 * vmax);

  const auto residual = [&sys](const std::vector<double>& v_full, std::vector<double>& f) {
    sys.static_residual(v_full, f);
  };

  bool converged = sys.newton(x, t_ps, 1.0, residual, 200);
  if (!converged) {
    // Source stepping: ramp supplies from 10% to 100%, warm-starting Newton.
    std::fill(x.begin(), x.end(), 0.0);
    converged = true;
    for (int step = 1; step <= 10 && converged; ++step) {
      converged = sys.newton(x, t_ps, 0.1 * step, residual, 200);
    }
  }
  if (!converged) {
    // Pseudo-transient homotopy: virtual capacitors on every unknown node,
    // integrated from 0 V with a growing timestep until steady state. Damped
    // Newton converges on each small step even for the feedback structures
    // (XOR trees, latch loops) that defeat the direct solve.
    std::fill(x.begin(), x.end(), 0.0);
    std::vector<double> x_prev = x;
    constexpr double kVirtualCapFf = 10.0;
    double dt = 0.5;  // ps
    converged = false;
    for (int step = 0; step < 400; ++step) {
      const std::vector<double> x_before = x;
      const auto pt_residual = [&](const std::vector<double>& v_full, std::vector<double>& f) {
        sys.static_residual(v_full, f);
        for (std::size_t i = 0; i < f.size(); ++i) {
          f[i] -= kVirtualCapFf * (x[i] - x_prev[i]) / dt;
        }
      };
      // Note: the residual reads `x` through the closure as Newton updates
      // it, so the capacitor current uses the trial voltage, as BE requires.
      if (!sys.newton(x, t_ps, 1.0, pt_residual, 60)) {
        x = x_before;
        dt *= 0.5;
        if (dt < 1e-3) break;
        continue;
      }
      double dv = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) dv = std::max(dv, std::fabs(x[i] - x_prev[i]));
      x_prev = x;
      dt = std::min(dt * 1.6, 100.0);
      if (dv < 1e-7 && step > 3) {
        converged = true;
        break;
      }
    }
    // Final verification with the true static residual.
    if (converged) converged = sys.newton(x, t_ps, 1.0, residual, 100);
  }
  if (!converged) throw std::runtime_error("dc_operating_point: Newton failed to converge");

  std::vector<double> v_full;
  sys.scatter(x, t_ps, 1.0, v_full);
  return v_full;
}

}  // namespace

TransientResult::TransientResult(std::vector<NodeId> probes, int node_count)
    : probes_(std::move(probes)), waveforms_(probes_.size()) {
  final_.assign(static_cast<std::size_t>(node_count), 0.0);
}

const Waveform& TransientResult::waveform(NodeId node) const {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i] == node) return waveforms_[i];
  }
  throw std::out_of_range("TransientResult: node was not probed");
}

void TransientResult::record(double t_ps, const std::vector<double>& node_voltages) {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    waveforms_[i].append(t_ps, node_voltages[static_cast<std::size_t>(probes_[i])]);
  }
  final_ = node_voltages;
}

double TransientResult::final_voltage(NodeId node) const {
  return final_[static_cast<std::size_t>(node)];
}

std::vector<double> dc_operating_point(const Circuit& circuit, double t_ps,
                                       const TransientOptions& options) {
  return solve_dc(circuit, t_ps, options);
}

TransientResult simulate_transient(const Circuit& circuit, const TransientOptions& options,
                                   const std::vector<NodeId>& probes) {
  NodalSystem sys(circuit, options);
  TransientResult result(probes, circuit.node_count());

  std::vector<double> v_prev_full = solve_dc(circuit, 0.0, options);
  result.record(0.0, v_prev_full);

  // Unknown vector from the DC solution.
  const auto n = static_cast<std::size_t>(sys.n_unknowns());
  std::vector<double> x(n, 0.0);
  for (NodeId node = 0; node < circuit.node_count(); ++node) {
    const int u = sys.unknown_index()[static_cast<std::size_t>(node)];
    if (u >= 0) x[static_cast<std::size_t>(u)] = v_prev_full[static_cast<std::size_t>(node)];
  }

  double t = 0.0;
  double dt = options.dt_initial_ps;
  std::vector<double> v_full;
  while (t < options.t_stop_ps - 1e-9) {
    // Never step across a source breakpoint; land on it exactly.
    double dt_eff = std::min(dt, options.t_stop_ps - t);
    for (const auto& src : circuit.sources()) {
      if (const auto bp = src.waveform.next_breakpoint(t)) {
        if (*bp - t > 1e-9) dt_eff = std::min(dt_eff, *bp - t);
      }
    }

    const double t_next = t + dt_eff;
    std::vector<double> x_try = x;
    const auto residual = [&](const std::vector<double>& vf, std::vector<double>& f) {
      sys.transient_residual(vf, v_prev_full, dt_eff, f);
    };
    const bool converged = sys.newton(x_try, t_next, 1.0, residual, options.max_newton);
    if (!converged) {
      if (dt_eff <= options.dt_min_ps * 1.0001) {
        throw std::runtime_error("simulate_transient: Newton failed at minimum timestep");
      }
      dt = std::max(options.dt_min_ps, dt_eff * 0.25);
      continue;
    }

    // Accept the step.
    double dv_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) dv_max = std::max(dv_max, std::fabs(x_try[i] - x[i]));
    x = x_try;
    sys.scatter(x, t_next, 1.0, v_full);
    v_prev_full = v_full;
    t = t_next;
    result.record(t, v_full);

    // Timestep control: aim for dv_target per step.
    double grow = 2.0;
    if (dv_max > 1e-12) grow = std::clamp(options.dv_target_v / dv_max, 0.4, 2.0);
    dt = std::clamp(dt_eff * grow, options.dt_min_ps, options.dt_max_ps);
  }
  return result;
}

}  // namespace rw::spice
