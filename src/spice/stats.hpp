#pragma once

/// \file stats.hpp
/// Process-wide solver-level performance counters. Every counter is a
/// relaxed atomic: incrementing from worker threads is effectively free, and
/// the numbers are diagnostics (they never feed back into results, so
/// snapshot tearing across counters is acceptable). `bench/perf_micro`
/// resets them around each study and emits the snapshot into
/// BENCH_perf.json, making the perf trajectory attributable — how many
/// Newton solves ran, how many factorizations they needed, how often the DC
/// warm start hit, and how many solves interpolation avoided entirely.

#include <cstdint>

namespace rw::spice {

/// One snapshot of the counters (see `solver_counters()`).
struct SolverCounters {
  std::uint64_t newton_iterations = 0;   ///< Newton steps across all solves
  std::uint64_t factorizations = 0;      ///< sparse LU numeric refactorizations
  std::uint64_t dense_fallbacks = 0;     ///< pivot-failure falls to dense PP-LU
  std::uint64_t dc_solves = 0;           ///< full (cold) DC operating points
  std::uint64_t transient_attempts = 0;  ///< transient attempts incl. ladder rungs
  std::uint64_t warm_start_hits = 0;     ///< transients seeded from a shared DC
  std::uint64_t warm_start_misses = 0;   ///< warm seed rejected -> cold DC
  std::uint64_t workspace_builds = 0;    ///< symbolic analyses (new topology)
  std::uint64_t workspace_reuses = 0;    ///< solves served by a cached workspace
};

/// Current counter values (monotone since the last reset).
SolverCounters solver_counters();

/// Zeroes every counter (benches call this before a measured study).
void reset_solver_counters();

/// Internal increment hooks (relaxed atomics; safe from any thread).
namespace stats {
void add_newton_iterations(std::uint64_t n);
void add_factorization();
void add_dense_fallback();
void add_dc_solve();
void add_transient_attempt();
void add_warm_start_hit();
void add_warm_start_miss();
void add_workspace_build();
void add_workspace_reuse();
}  // namespace stats

}  // namespace rw::spice
