#include "image/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace rw::image {

Image::Image(int width, int height, std::uint8_t fill) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("Image: bad dimensions");
  pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill);
}

std::uint8_t Image::at(int x, int y) const {
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void Image::set(int x, int y, std::uint8_t value) {
  pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = value;
}

Image make_synthetic_image(int width, int height, std::uint64_t seed) {
  if (width % 8 != 0 || height % 8 != 0) {
    throw std::invalid_argument("make_synthetic_image: dimensions must be multiples of 8");
  }
  Image img(width, height);
  util::Rng rng(seed);
  const double cx = 0.62 * width;
  const double cy = 0.38 * height;
  const double r = 0.22 * std::min(width, height);

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Diagonal gradient base.
      double v = 40.0 + 140.0 * (static_cast<double>(x) + y) / (width + height);
      // Bright disk.
      const double dx = x - cx;
      const double dy = y - cy;
      if (dx * dx + dy * dy < r * r) v += 70.0;
      // Dark vertical bars on the left third.
      if (x < width / 3 && (x / 4) % 2 == 0) v -= 45.0;
      // Sinusoidal texture (high-frequency content).
      v += 12.0 * std::sin(0.7 * x) * std::cos(0.5 * y);
      // Mild film-grain noise.
      v += rng.uniform(-4.0, 4.0);
      img.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return img;
}

void write_pgm(const Image& image, const std::string& path) {
  std::string data = "P5\n" + std::to_string(image.width()) + " " +
                     std::to_string(image.height()) + "\n255\n";
  data.append(reinterpret_cast<const char*>(image.pixels().data()), image.pixels().size());
  util::write_file_atomic(path, data);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  if (magic != "P5" || maxval != 255) throw std::runtime_error("read_pgm: unsupported format");
  in.get();  // single whitespace after header
  Image img(w, h);
  std::vector<char> buf(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!in) throw std::runtime_error("read_pgm: truncated file " + path);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.set(x, y, static_cast<std::uint8_t>(buf[static_cast<std::size_t>(y) * w + x]));
    }
  }
  return img;
}

}  // namespace rw::image
