#include "image/psnr.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rw::image {

double psnr_db(const Image& reference, const Image& test) {
  if (reference.width() != test.width() || reference.height() != test.height()) {
    throw std::invalid_argument("psnr_db: image size mismatch");
  }
  double sse = 0.0;
  for (int y = 0; y < reference.height(); ++y) {
    for (int x = 0; x < reference.width(); ++x) {
      const double d = static_cast<double>(reference.at(x, y)) - test.at(x, y);
      sse += d * d;
    }
  }
  const double n = static_cast<double>(reference.width()) * reference.height();
  if (sse == 0.0) return std::numeric_limits<double>::infinity();
  const double mse = sse / n;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace rw::image
