#pragma once

/// \file psnr.hpp
/// Peak signal-to-noise ratio — the paper's image-quality metric (30 dB is
/// quoted as the acceptability threshold).

#include "image/image.hpp"

namespace rw::image {

/// PSNR in dB between two equally sized images; +infinity for identical
/// images. \throws std::invalid_argument on size mismatch.
double psnr_db(const Image& reference, const Image& test);

/// The paper's acceptable-quality threshold.
inline constexpr double kAcceptablePsnrDb = 30.0;

}  // namespace rw::image
