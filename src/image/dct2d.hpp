#pragma once

/// \file dct2d.hpp
/// Block-based 2-D DCT/quantization machinery shared by the software
/// reference and the gate-level chain: an abstract 8-sample "vector port"
/// (implemented by the software reference, the IR functional simulator, and
/// the gate-level timing simulator), the row-column 2-D transform built on
/// it, and a JPEG-style quantizer.

#include <array>
#include <vector>

#include "image/image.hpp"

namespace rw::image {

using Vec8 = std::array<int, 8>;

/// One 8-point transform engine. process_batch streams vectors through the
/// (possibly pipelined) engine and returns one result per input.
class VectorPort {
 public:
  virtual ~VectorPort() = default;
  virtual std::vector<Vec8> process_batch(const std::vector<Vec8>& inputs) = 0;
};

/// Software reference ports (exact integer arithmetic of the circuits).
class ReferenceDct final : public VectorPort {
 public:
  std::vector<Vec8> process_batch(const std::vector<Vec8>& inputs) override;
};
class ReferenceIdct final : public VectorPort {
 public:
  std::vector<Vec8> process_batch(const std::vector<Vec8>& inputs) override;
};

/// JPEG-style luminance quantization table (flat-ish, scaled by `strength`;
/// strength 1.0 ~ high quality).
struct QuantTable {
  std::array<int, 64> q{};  ///< row-major, index = v*8+u
  static QuantTable jpeg_luma(double strength = 1.0);
};

/// Blockwise forward 2-D DCT of the whole image (level shift included):
/// returns per-block 8x8 coefficient arrays in block raster order.
std::vector<std::array<int, 64>> forward_dct_image(const Image& image, VectorPort& dct);

/// Quantize/dequantize in place.
void quantize_blocks(std::vector<std::array<int, 64>>& blocks, const QuantTable& table);

/// Blockwise inverse 2-D DCT back to an image (level shift + clamping).
Image inverse_dct_image(const std::vector<std::array<int, 64>>& blocks, int width, int height,
                        VectorPort& idct);

}  // namespace rw::image
