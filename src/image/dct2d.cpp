#include "image/dct2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuits/benchmarks.hpp"

namespace rw::image {

std::vector<Vec8> ReferenceDct::process_batch(const std::vector<Vec8>& inputs) {
  std::vector<Vec8> out(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    circuits::dct8_reference(inputs[i].data(), out[i].data());
  }
  return out;
}

std::vector<Vec8> ReferenceIdct::process_batch(const std::vector<Vec8>& inputs) {
  std::vector<Vec8> out(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    circuits::idct8_reference(inputs[i].data(), out[i].data());
  }
  return out;
}

QuantTable QuantTable::jpeg_luma(double strength) {
  // JPEG Annex K luminance table.
  static constexpr int kBase[64] = {
      16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
      14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
      18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
      49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
  QuantTable t;
  for (int i = 0; i < 64; ++i) {
    t.q[static_cast<std::size_t>(i)] =
        std::max(1, static_cast<int>(std::lround(kBase[i] * strength)));
  }
  return t;
}

namespace {

void check_dims(int width, int height) {
  if (width % 8 != 0 || height % 8 != 0) {
    throw std::invalid_argument("dct2d: image dimensions must be multiples of 8");
  }
}

}  // namespace

std::vector<std::array<int, 64>> forward_dct_image(const Image& image, VectorPort& dct) {
  check_dims(image.width(), image.height());
  const int bw = image.width() / 8;
  const int bh = image.height() / 8;
  const std::size_t n_blocks = static_cast<std::size_t>(bw) * static_cast<std::size_t>(bh);

  // Pass 1: all row vectors of all blocks (level-shifted pixels).
  std::vector<Vec8> rows;
  rows.reserve(n_blocks * 8);
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      for (int r = 0; r < 8; ++r) {
        Vec8 v;
        for (int c = 0; c < 8; ++c) v[static_cast<std::size_t>(c)] =
            static_cast<int>(image.at(bx * 8 + c, by * 8 + r)) - 128;
        rows.push_back(v);
      }
    }
  }
  const std::vector<Vec8> row_out = dct.process_batch(rows);

  // Pass 2: columns of the intermediate blocks.
  std::vector<Vec8> cols;
  cols.reserve(n_blocks * 8);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (int c = 0; c < 8; ++c) {
      Vec8 v;
      for (int r = 0; r < 8; ++r) {
        v[static_cast<std::size_t>(r)] = row_out[b * 8 + static_cast<std::size_t>(r)]
                                                [static_cast<std::size_t>(c)];
      }
      cols.push_back(v);
    }
  }
  const std::vector<Vec8> col_out = dct.process_batch(cols);

  // Assemble coefficient blocks: col_out[b*8+c][v] = coeff(v, u=c).
  std::vector<std::array<int, 64>> blocks(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (int u = 0; u < 8; ++u) {
      for (int v = 0; v < 8; ++v) {
        blocks[b][static_cast<std::size_t>(v * 8 + u)] =
            col_out[b * 8 + static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
      }
    }
  }
  return blocks;
}

void quantize_blocks(std::vector<std::array<int, 64>>& blocks, const QuantTable& table) {
  for (auto& block : blocks) {
    for (int i = 0; i < 64; ++i) {
      const int q = table.q[static_cast<std::size_t>(i)];
      const int c = block[static_cast<std::size_t>(i)];
      const int quantized = (c >= 0 ? (c + q / 2) : (c - q / 2)) / q;
      block[static_cast<std::size_t>(i)] = quantized * q;
    }
  }
}

Image inverse_dct_image(const std::vector<std::array<int, 64>>& blocks, int width, int height,
                        VectorPort& idct) {
  check_dims(width, height);
  const int bw = width / 8;
  const int bh = height / 8;
  const std::size_t n_blocks = static_cast<std::size_t>(bw) * static_cast<std::size_t>(bh);
  if (blocks.size() != n_blocks) throw std::invalid_argument("inverse_dct_image: block count");

  // Pass 1: inverse transform along columns (index v for each u).
  std::vector<Vec8> cols;
  cols.reserve(n_blocks * 8);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (int u = 0; u < 8; ++u) {
      Vec8 v;
      for (int k = 0; k < 8; ++k) v[static_cast<std::size_t>(k)] =
          blocks[b][static_cast<std::size_t>(k * 8 + u)];
      cols.push_back(v);
    }
  }
  const std::vector<Vec8> col_out = idct.process_batch(cols);

  // Pass 2: inverse transform along rows.
  std::vector<Vec8> rows;
  rows.reserve(n_blocks * 8);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (int r = 0; r < 8; ++r) {
      Vec8 v;
      for (int u = 0; u < 8; ++u) {
        v[static_cast<std::size_t>(u)] = col_out[b * 8 + static_cast<std::size_t>(u)]
                                                [static_cast<std::size_t>(r)];
      }
      rows.push_back(v);
    }
  }
  const std::vector<Vec8> row_out = idct.process_batch(rows);

  Image img(width, height);
  std::size_t b = 0;
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx, ++b) {
      for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
          const int value = row_out[b * 8 + static_cast<std::size_t>(r)]
                                   [static_cast<std::size_t>(c)] + 128;
          img.set(bx * 8 + c, by * 8 + r,
                  static_cast<std::uint8_t>(std::clamp(value, 0, 255)));
        }
      }
    }
  }
  return img;
}

}  // namespace rw::image
