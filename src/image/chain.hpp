#pragma once

/// \file chain.hpp
/// The DCT -> quantize -> IDCT image chain evaluated against different
/// hardware models: the IR functional simulator (golden), the mapped
/// netlist at zero delay (equivalence checking), and the gate-level timing
/// simulation whose capture errors reproduce the paper's aging-induced
/// image degradation (Figs. 6(c), 7).

#include <memory>
#include <string>

#include "image/dct2d.hpp"
#include "image/psnr.hpp"
#include "logicsim/simulator.hpp"
#include "logicsim/timingsim.hpp"
#include "synth/ir.hpp"

namespace rw::image {

/// Functional (cycle-accurate) port over an IR circuit. Word ports are
/// named "<base><index>_<bit>", e.g. x3_11. Two-cycle pipeline latency is
/// handled internally.
class IrVectorPort final : public VectorPort {
 public:
  IrVectorPort(const synth::Ir& ir, std::string in_base, int in_width, std::string out_base,
               int out_width);
  std::vector<Vec8> process_batch(const std::vector<Vec8>& inputs) override;

 private:
  synth::IrSimulator sim_;
  std::string in_base_;
  std::string out_base_;
  int in_width_;
  int out_width_;
};

/// Zero-delay port over a mapped netlist (functional equivalence checks).
class NetlistVectorPort final : public VectorPort {
 public:
  NetlistVectorPort(const netlist::Module& module, const liberty::Library& library,
                    std::string in_base, int in_width, std::string out_base, int out_width);
  std::vector<Vec8> process_batch(const std::vector<Vec8>& inputs) override;

 private:
  logicsim::CycleSimulator sim_;
  std::string in_base_;
  std::string out_base_;
  int in_width_;
  int out_width_;
};

/// Gate-level timing port: vectors stream through the pipeline at the given
/// clock period with SDF-style delays; unsettled logic at a clock edge is
/// captured wrong, exactly like hardware.
class TimedVectorPort final : public VectorPort {
 public:
  TimedVectorPort(const netlist::Module& module, const liberty::Library& library,
                  const netlist::DelayAnnotation& annotation, double period_ps,
                  std::string in_base, int in_width, std::string out_base, int out_width);
  std::vector<Vec8> process_batch(const std::vector<Vec8>& inputs) override;

 private:
  logicsim::TimingSimulator sim_;
  std::string in_base_;
  std::string out_base_;
  int in_width_;
  int out_width_;
};

struct ChainResult {
  Image output;
  double psnr_db = 0.0;  ///< vs. the original input image
};

/// Full encode/decode chain: forward 2-D DCT, quantize/dequantize, inverse
/// 2-D DCT; PSNR against the original.
ChainResult run_dct_idct_chain(const Image& input, VectorPort& dct, VectorPort& idct,
                               const QuantTable& quant);

}  // namespace rw::image
