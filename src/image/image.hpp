#pragma once

/// \file image.hpp
/// Grayscale image container, PGM I/O and deterministic synthetic test
/// images (stand-ins for the standard video frames the paper processes).

#include <cstdint>
#include <string>
#include <vector>

namespace rw::image {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint8_t fill = 0);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t value);
  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Deterministic synthetic test image: smooth gradients, disks, bars and
/// fine texture — a mix of low- and high-frequency content so DCT errors
/// are visible the way they are on natural images. Dimensions must be
/// multiples of 8.
Image make_synthetic_image(int width, int height, std::uint64_t seed = 1);

/// Binary PGM (P5). \throws std::runtime_error on I/O failure.
void write_pgm(const Image& image, const std::string& path);
Image read_pgm(const std::string& path);

}  // namespace rw::image
