#include "image/chain.hpp"

#include <functional>
#include <stdexcept>

namespace rw::image {

namespace {

/// Two's-complement bit of `value` at position `bit`.
bool bit_of(int value, int bit) { return ((static_cast<unsigned>(value) >> bit) & 1U) != 0; }

/// Sign-extended integer from collected bits.
int from_bits(const std::vector<bool>& bits) {
  unsigned raw = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) raw |= 1U << i;
  }
  const unsigned sign_bit = 1U << (bits.size() - 1);
  if ((raw & sign_bit) != 0) raw |= ~(sign_bit | (sign_bit - 1U));
  return static_cast<int>(raw);
}

std::string port_name(const std::string& base, int index, int bit) {
  return base + std::to_string(index) + "_" + std::to_string(bit);
}

/// Shared two-register pipeline protocol: the vector fed at step t is
/// readable at step t+2. Per step: present inputs, `settle()` (evaluate /
/// run one timed clock period), read, `advance()` (clock edge for the
/// functional sims; a no-op for the timed sim whose run_cycle already
/// captured).
std::vector<Vec8> stream_batch(const std::vector<Vec8>& inputs, int in_width, int out_width,
                               const std::function<void(int, int, bool)>& set_bit,
                               const std::function<void()>& settle,
                               const std::function<void()>& advance,
                               const std::function<bool(int, int)>& get_bit) {
  std::vector<Vec8> results;
  results.reserve(inputs.size());
  const int n = static_cast<int>(inputs.size());
  std::vector<bool> bits(static_cast<std::size_t>(out_width));
  for (int t = 0; t < n + 2; ++t) {
    if (t < n) {
      for (int i = 0; i < 8; ++i) {
        for (int b = 0; b < in_width; ++b) {
          set_bit(i, b,
                  bit_of(inputs[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)], b));
        }
      }
    }
    settle();
    if (t >= 2) {
      Vec8 out;
      for (int i = 0; i < 8; ++i) {
        for (int b = 0; b < out_width; ++b) bits[static_cast<std::size_t>(b)] = get_bit(i, b);
        out[static_cast<std::size_t>(i)] = from_bits(bits);
      }
      results.push_back(out);
    }
    advance();
  }
  return results;
}

}  // namespace

IrVectorPort::IrVectorPort(const synth::Ir& ir, std::string in_base, int in_width,
                           std::string out_base, int out_width)
    : sim_(ir),
      in_base_(std::move(in_base)),
      out_base_(std::move(out_base)),
      in_width_(in_width),
      out_width_(out_width) {}

std::vector<Vec8> IrVectorPort::process_batch(const std::vector<Vec8>& inputs) {
  sim_.reset();
  return stream_batch(
      inputs, in_width_, out_width_,
      [&](int i, int b, bool v) { sim_.set_input(port_name(in_base_, i, b), v); },
      [&] { sim_.evaluate(); }, [&] { sim_.clock_edge(); },
      [&](int i, int b) { return sim_.output(port_name(out_base_, i, b)); });
}

std::vector<Vec8> NetlistVectorPort::process_batch(const std::vector<Vec8>& inputs) {
  sim_.reset();
  return stream_batch(
      inputs, in_width_, out_width_,
      [&](int i, int b, bool v) {
        sim_.set_input(sim_.module().find_net(port_name(in_base_, i, b)), v);
      },
      [&] { sim_.evaluate(); }, [&] { sim_.clock_edge(); },
      [&](int i, int b) { return sim_.value(sim_.module().find_net(port_name(out_base_, i, b))); });
}

NetlistVectorPort::NetlistVectorPort(const netlist::Module& module,
                                     const liberty::Library& library, std::string in_base,
                                     int in_width, std::string out_base, int out_width)
    : sim_(module, library),
      in_base_(std::move(in_base)),
      out_base_(std::move(out_base)),
      in_width_(in_width),
      out_width_(out_width) {}

TimedVectorPort::TimedVectorPort(const netlist::Module& module, const liberty::Library& library,
                                 const netlist::DelayAnnotation& annotation, double period_ps,
                                 std::string in_base, int in_width, std::string out_base,
                                 int out_width)
    : sim_(module, library, annotation, period_ps),
      in_base_(std::move(in_base)),
      out_base_(std::move(out_base)),
      in_width_(in_width),
      out_width_(out_width) {}

std::vector<Vec8> TimedVectorPort::process_batch(const std::vector<Vec8>& inputs) {
  sim_.reset();
  return stream_batch(
      inputs, in_width_, out_width_,
      [&](int i, int b, bool v) {
        sim_.set_input(sim_.module().find_net(port_name(in_base_, i, b)), v);
      },
      [&] { sim_.run_cycle(); }, [] {},
      [&](int i, int b) {
        return sim_.sampled(sim_.module().find_net(port_name(out_base_, i, b)));
      });
}

ChainResult run_dct_idct_chain(const Image& input, VectorPort& dct, VectorPort& idct,
                               const QuantTable& quant) {
  auto blocks = forward_dct_image(input, dct);
  quantize_blocks(blocks, quant);
  ChainResult result{inverse_dct_image(blocks, input.width(), input.height(), idct), 0.0};
  result.psnr_db = psnr_db(input, result.output);
  return result;
}

}  // namespace rw::image
