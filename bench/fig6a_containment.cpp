/// Reproduces Fig. 6(a): guardband *containment* by aging-aware synthesis.
/// Each circuit is synthesized twice — with the initial library and with the
/// worst-case degradation-aware library — and both guardbands are measured
/// against the same fresh baseline. Paper result: 50 % smaller guardbands on
/// average (up to 75 %), with 4-6 % higher achievable lifetime frequency.

#include <vector>

#include "bench/common.hpp"
#include "flow/aging_aware_synthesis.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header(
      "Fig. 6(a) — required vs contained guardbands (aging-aware synthesis\n"
      "with the worst-case degradation-aware library, 10-year lifetime)");

  const auto& fresh = bench::fresh_library();
  const auto& aged = bench::worst_library();

  std::printf("%-9s %12s %12s %12s %10s %8s\n", "circuit", "CP t0 [ps]", "required", "contained",
              "reduction", "f gain");
  std::vector<double> reductions;
  std::vector<double> fgains;
  for (const auto& bc : circuits::benchmark_suite()) {
    const auto r = flow::run_containment(bc.build(), fresh, aged, bc.name, bench::full_effort());
    reductions.push_back(r.guardband_reduction_pct());
    fgains.push_back(r.frequency_gain_pct());
    std::printf("%-9s %12.1f %12.1f %12.1f %+9.1f%% %+7.1f%%\n", bc.name.c_str(),
                r.conventional_fresh_cp_ps, r.required_guardband_ps(),
                r.contained_guardband_ps(), r.guardband_reduction_pct(),
                r.frequency_gain_pct());
    std::fflush(stdout);
  }
  std::printf("%-9s %38s %+9.1f%% %+7.1f%%\n", "Average", "", util::mean(reductions),
              util::mean(fgains));
  std::printf(
      "\nPaper: avg 50%% (up to 75%%) smaller guardbands, 4-6%% frequency gain.\n"
      "Reproduction: same direction — the aging-aware netlists consistently\n"
      "need less margin — with a smaller factor (our mapper/sizer has less\n"
      "optimization freedom than Design Compiler's compile_ultra; see\n"
      "EXPERIMENTS.md for the discussion).\n");
  return 0;
}
