/// Reproduces Fig. 7: the actual output images of the DCT-IDCT chain for
/// the reliability-unaware vs reliability-aware designs under aging. Writes
/// PGM files (fig7_*.pgm) next to the binary and prints their PSNR. Paper
/// shape: one worst-case year destroys the unaware design's image; the
/// aware design's output stays visually identical to the unaged one.

#include "bench/common.hpp"
#include "image/chain.hpp"
#include "netlist/sdf.hpp"
#include "sta/analysis.hpp"

namespace {

using namespace rw;

image::ChainResult run_timed(const synth::SynthesisResult& dct,
                             const synth::SynthesisResult& idct, const liberty::Library& lib,
                             double period_ps, const image::Image& img,
                             const image::QuantTable& quant) {
  const sta::Sta sd(dct.module, lib);
  const sta::Sta si(idct.module, lib);
  const auto ad = netlist::compute_delay_annotation(sd);
  const auto ai = netlist::compute_delay_annotation(si);
  image::TimedVectorPort pd(dct.module, lib, ad, period_ps, "x", 12, "y", 12);
  image::TimedVectorPort pi(idct.module, lib, ai, period_ps, "y", 12, "x", 12);
  return image::run_dct_idct_chain(img, pd, pi, quant);
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  bench::print_header("Fig. 7 — DCT-IDCT output images (written as fig7_*.pgm)");

  auto& factory = bench::factory();
  const auto& fresh = bench::fresh_library();
  const auto& worst10 = bench::worst_library(10);

  const auto conv_dct = synth::synthesize(circuits::make_dct8(), fresh, "dct",
                                          bench::full_effort());
  const auto conv_idct = synth::synthesize(circuits::make_idct8(), fresh, "idct",
                                           bench::full_effort());
  const auto aw_dct = synth::synthesize(circuits::make_dct8(), worst10, "dct_aw",
                                        bench::full_effort());
  const auto aw_idct = synth::synthesize(circuits::make_idct8(), worst10, "idct_aw",
                                         bench::full_effort());
  const double period = std::max(sta::Sta(conv_dct.module, fresh).critical_delay_ps(),
                                 sta::Sta(conv_idct.module, fresh).critical_delay_ps());

  const image::Image original = image::make_synthetic_image(64, 64);
  const auto quant = image::QuantTable::jpeg_luma(1.0);
  image::write_pgm(original, "fig7_original.pgm");

  struct Shot {
    const char* file;
    const char* label;
    bool aware;
    aging::AgingScenario scenario;
  };
  const Shot shots[] = {
      {"fig7_unaware_balance_1y.pgm", "unaware, balance-case, year 1", false,
       aging::AgingScenario::balanced(1)},
      {"fig7_unaware_worst_1y.pgm", "unaware, worst-case, year 1", false,
       aging::AgingScenario::worst_case(1)},
      {"fig7_unaware_worst_10y.pgm", "unaware, worst-case, year 10", false,
       aging::AgingScenario::worst_case(10)},
      {"fig7_aware_worst_1y.pgm", "aware,   worst-case, year 1", true,
       aging::AgingScenario::worst_case(1)},
      {"fig7_aware_worst_10y.pgm", "aware,   worst-case, year 10", true,
       aging::AgingScenario::worst_case(10)},
  };
  std::printf("%-34s %10s  %s\n", "scenario", "PSNR [dB]", "file");
  for (const Shot& shot : shots) {
    const auto& lib = factory.library(shot.scenario);
    const auto result = shot.aware
                            ? run_timed(aw_dct, aw_idct, lib, period, original, quant)
                            : run_timed(conv_dct, conv_idct, lib, period, original, quant);
    image::write_pgm(result.output, shot.file);
    std::printf("%-34s %10.1f  %s\n", shot.label, result.psnr_db, shot.file);
    std::fflush(stdout);
  }
  std::printf(
      "\nInspect the PGMs: one worst-case year destroys the unaware design's\n"
      "image (paper: PSNR 9 dB). In the paper the aware design's image stays\n"
      "clean for 10 years; see EXPERIMENTS.md Note A for why ours does not.\n");
  return 0;
}
