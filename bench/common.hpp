#pragma once

/// \file common.hpp
/// Shared setup for the reproduction harnesses: one library factory over the
/// default disk cache, the paper's aging scenarios, and small printing
/// helpers. Every bench binary regenerates one figure of the paper and
/// prints the measured counterpart of its rows/series.

#include <cstdio>
#include <string>

#include "charlib/factory.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/libgen.hpp"
#include "sta/analysis.hpp"
#include "synth/synthesizer.hpp"
#include "util/thread_pool.hpp"

namespace rw::bench {

/// Call first in every bench main: consumes `--threads N` (characterization
/// otherwise uses $RW_THREADS, else all hardware threads) and leaves the
/// remaining positional arguments in place.
inline void init(int& argc, char** argv) { util::consume_thread_flag(argc, argv); }

inline charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f{};  // full catalog, 7x7 grid, disk cache
  return f;
}

inline const liberty::Library& fresh_library() {
  return factory().library(aging::AgingScenario::fresh());
}

inline const liberty::Library& worst_library(double years = 10.0) {
  return factory().library(aging::AgingScenario::worst_case(years));
}

/// Synthesis options for guardband *estimation* benches: moderate effort is
/// enough because the netlist is fixed across the compared analyses.
inline synth::SynthesisOptions estimation_effort() {
  synth::SynthesisOptions o;
  o.multi_start = false;
  return o;
}

/// Full effort for the optimization benches (Fig. 6).
inline synth::SynthesisOptions full_effort() { return synth::SynthesisOptions{}; }

inline void print_header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace rw::bench
