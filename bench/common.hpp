#pragma once

/// \file common.hpp
/// Shared setup for the reproduction harnesses: one library factory over the
/// default disk cache, the paper's aging scenarios, and small printing
/// helpers. Every bench binary regenerates one figure of the paper and
/// prints the measured counterpart of its rows/series.

#include <cstdio>
#include <string>

#include "charlib/factory.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/cancel.hpp"
#include "flow/libgen.hpp"
#include "sta/analysis.hpp"
#include "synth/synthesizer.hpp"
#include "util/thread_pool.hpp"

namespace rw::bench {

/// Call first in every bench main: converts SIGINT/SIGTERM into cooperative
/// cancellation, arms $RW_DEADLINE_MS, and consumes `--threads N`
/// (characterization otherwise uses $RW_THREADS, else all hardware threads),
/// leaving the remaining positional arguments in place.
inline void init(int& argc, char** argv) {
  flow::install_signal_handlers();
  flow::install_deadline_from_env();
  util::consume_thread_flag(argc, argv);
}

inline charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f{};  // full catalog, 7x7 grid, disk cache
  return f;
}

inline const liberty::Library& fresh_library() {
  return factory().library(aging::AgingScenario::fresh());
}

inline const liberty::Library& worst_library(double years = 10.0) {
  return factory().library(aging::AgingScenario::worst_case(years));
}

/// Synthesis options for guardband *estimation* benches: moderate effort is
/// enough because the netlist is fixed across the compared analyses.
inline synth::SynthesisOptions estimation_effort() {
  synth::SynthesisOptions o;
  o.multi_start = false;
  return o;
}

/// Full effort for the optimization benches (Fig. 6).
inline synth::SynthesisOptions full_effort() { return synth::SynthesisOptions{}; }

inline void print_header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Call after the characterization-heavy phase of a bench: reports any
/// (scenario, cell) pairs the factory quarantined (permanent solver
/// failures served as errors, skipped by merged()) so a figure built on an
/// incomplete corner set says so instead of silently looking plausible.
inline void print_quarantine_report(charlib::LibraryFactory& f) {
  const auto bad = f.quarantined();
  if (bad.empty()) return;
  std::printf("WARNING: %zu (scenario, cell) pair(s) failed characterization permanently:\n",
              bad.size());
  for (const auto& q : bad) {
    std::printf("  %s / %s\n", q.scenario.c_str(), q.cell.c_str());
  }
  std::printf("  (error chains are in %s)\n", f.manifest_path().c_str());
}

}  // namespace rw::bench
