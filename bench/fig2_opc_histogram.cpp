/// Reproduces Fig. 2 of the paper: histograms of the per-arc delay change
/// under worst-case aging, (left) when only a single operating condition is
/// characterized vs (right) across all 49 OPCs. Paper shape: single-OPC
/// deltas are all positive and modest; the multi-OPC distribution is far
/// wider, with a substantial share (paper: 16 %) of points where a gate's
/// delay *improves*.

#include <vector>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header("Fig. 2 — aging-induced delay change across the cell library");

  const auto& fresh = bench::fresh_library();
  const auto& aged = bench::worst_library();
  const auto grid = charlib::OpcGrid::paper();

  std::vector<double> single_mid;     // one typical OPC
  std::vector<double> single_corner;  // the paper's "slowest slew, smallest cap"
  std::vector<double> multi;          // all 49 OPCs

  for (const auto& cell : fresh.cells()) {
    if (cell.is_flop) continue;
    const auto& aged_cell = aged.at(cell.name);
    for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
      for (const bool rise : {true, false}) {
        const auto& tf = rise ? cell.arcs[a].rise : cell.arcs[a].fall;
        const auto& ta = rise ? aged_cell.arcs[a].rise : aged_cell.arcs[a].fall;
        if (tf.empty()) continue;
        const auto pct = [&](double slew, double load) {
          const double f = tf.delay_ps.lookup(slew, load);
          return 100.0 * (ta.delay_ps.lookup(slew, load) - f) / std::max(1.0, std::abs(f));
        };
        single_mid.push_back(pct(60.0, 4.0));
        single_corner.push_back(pct(grid.slews_ps.back(), grid.loads_ff.front()));
        for (const double s : grid.slews_ps) {
          for (const double l : grid.loads_ff) multi.push_back(pct(s, l));
        }
      }
    }
  }

  std::printf("\n--- Single OPC (typical: slew 60 ps, load 4 fF), %zu arcs ---\n",
              single_mid.size());
  std::printf("%s", util::render_histogram(util::make_histogram(single_mid, 0, 32, 16)).c_str());
  std::printf("range: %+.1f%% .. %+.1f%%, improved: %.1f%%\n", util::min_of(single_mid),
              util::max_of(single_mid), 100.0 * util::fraction_negative(single_mid));

  std::printf("\n--- Single OPC (paper's corner: slowest slew, smallest cap) ---\n");
  std::printf("range: %+.1f%% .. %+.1f%%, improved: %.1f%%\n", util::min_of(single_corner),
              util::max_of(single_corner), 100.0 * util::fraction_negative(single_corner));

  std::printf("\n--- Multiple OPCs (all 49 per arc), %zu points ---\n", multi.size());
  std::printf("%s", util::render_histogram(util::make_histogram(multi, -60, 120, 18)).c_str());
  std::printf("range: %+.1f%% .. %+.1f%%, improved: %.1f%%  (paper: -60%%..+400%%, 16%%)\n",
              util::min_of(multi), util::max_of(multi), 100.0 * util::fraction_negative(multi));
  std::printf(
      "\nPaper shape check: the multi-OPC spread is far wider than any single\n"
      "OPC suggests, and a non-trivial share of (gate, OPC) points improves.\n");
  return 0;
}
