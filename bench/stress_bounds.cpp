/// Static-vs-dynamic stress study over the paper's benchmark circuits:
/// compares the one-corner static worst case (Section 4.1), the
/// bounded-static guardband (each instance timed at its own worst corner
/// inside the statically *proven* λ interval), and the simulation-driven
/// dynamic flow (Fig. 4(b)) — and records the guardband deltas plus the
/// analysis-vs-simulation wall-time speedup into BENCH_stress.json.
///
/// Flags:
///   --json-out=PATH   baseline path (default: BENCH_stress.json)
///   --circuits=N      first N benchmark circuits only (0 = all)
///   --threads N       characterization/evaluation threads
///
/// Invariant checked here (and in tests/stress_test.cpp): the bounded-static
/// guardband can never exceed the one-corner static guardband, because every
/// in-bounds corner is dominated by the λp = λn = 1 worst case.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/atomic_file.hpp"
#include "flow/guardband_flow.hpp"
#include "logicsim/activity.hpp"
#include "logicsim/simulator.hpp"
#include "stress/analyzer.hpp"
#include "util/rng.hpp"

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Row {
  std::string name;
  std::size_t instances = 0;
  std::size_t candidate_corners = 0;
  std::size_t widened_nets = 0;
  double static_gb_ps = 0.0;
  double bounded_gb_ps = 0.0;
  double dynamic_gb_ps = 0.0;
  double analyze_ms = 0.0;
  double simulate_ms = 0.0;
};

template <typename... Args>
void appendf(std::string& s, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  s += buf;
}

void write_json(const std::string& path, double years, const std::vector<Row>& rows) {
  std::string out;
  appendf(out, "{\n  \"years\": %.1f,\n  \"lambda_step\": 0.1,\n", years);
  appendf(out, "  \"circuits\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    appendf(out, "    \"%s\": {\n", r.name.c_str());
    appendf(out, "      \"instances\": %zu,\n", r.instances);
    appendf(out, "      \"candidate_corners\": %zu,\n", r.candidate_corners);
    appendf(out, "      \"widened_nets\": %zu,\n", r.widened_nets);
    appendf(out,
            "      \"guardband_ps\": {\"one_corner_static\": %.3f, "
            "\"bounded_static\": %.3f, \"dynamic\": %.3f},\n",
            r.static_gb_ps, r.bounded_gb_ps, r.dynamic_gb_ps);
    appendf(out, "      \"bounded_vs_static_delta_ps\": %.3f,\n",
            r.static_gb_ps - r.bounded_gb_ps);
    appendf(out,
            "      \"analysis\": {\"static_ms\": %.3f, \"dynamic_sim_ms\": %.3f, "
            "\"speedup\": %.3f}\n",
            r.analyze_ms, r.simulate_ms,
            r.analyze_ms > 0.0 ? r.simulate_ms / r.analyze_ms : 0.0);
    appendf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  appendf(out, "  }\n}\n");
  if (!rw::util::write_file_atomic_nothrow(path, out)) {
    std::fprintf(stderr, "stress baseline: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "stress baseline written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;

  // Warning-level preflight findings (e.g. SP002 on dead logic) are noise in
  // a table-producing bench; errors still reach stderr. Respects an explicit
  // override from the environment.
  setenv("RW_LINT_MIN_SEVERITY", "error", 0);

  std::string json_out = "BENCH_stress.json";
  std::size_t max_circuits = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--circuits=", 11) == 0) {
      max_circuits = static_cast<std::size_t>(std::strtoul(argv[i] + 11, nullptr, 10));
    }
  }

  constexpr double kYears = 10.0;
  constexpr int kCycles = 500;
  bench::print_header(
      "Static stress bounds — one-corner static vs bounded-static vs dynamic\n"
      "guardband on the paper benchmark circuits (10-year lifetime)");

  std::vector<Row> rows;
  for (const auto& bc : circuits::benchmark_suite()) {
    if (max_circuits > 0 && rows.size() >= max_circuits) break;
    const auto res =
        synth::synthesize(bc.build(), bench::fresh_library(), bc.name, bench::estimation_effort());
    const netlist::Module& module = res.module;

    Row row;
    row.name = bc.name;
    row.instances = module.instances().size();

    // Wall-time duel: the full static interval analysis vs one dynamic
    // workload (simulate + duty-cycle extraction) over the same netlist.
    stress::StressReport report;
    row.analyze_ms = wall_ms(
        [&] { report = stress::analyze(module, bench::fresh_library(), {}); });
    row.widened_nets = report.widened_net_count();

    util::Rng rng(1);
    row.simulate_ms = wall_ms([&] {
      logicsim::CycleSimulator sim(module, bench::fresh_library());
      logicsim::ActivityCollector activity(module.net_count());
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        for (netlist::NetId pi : module.inputs()) {
          if (pi != module.clock()) sim.set_input(pi, rng.chance(0.5));
        }
        sim.evaluate();
        activity.observe(sim);
        sim.clock_edge();
      }
      (void)logicsim::extract_duty_cycles(module, bench::fresh_library(), activity);
    });

    const auto worst =
        flow::static_guardband(module, bench::factory(), aging::AgingScenario::worst_case(kYears));
    const auto bounded = flow::bounded_static_guardband(module, bench::factory(), kYears);
    util::Rng stim_rng(1);
    const flow::Stimulus stimulus = [&](logicsim::CycleSimulator& sim, int) {
      for (netlist::NetId pi : module.inputs()) {
        if (pi != module.clock()) sim.set_input(pi, stim_rng.chance(0.5));
      }
    };
    const auto dyn =
        flow::dynamic_workload_guardband(module, bench::factory(), stimulus, kCycles, kYears);

    row.static_gb_ps = worst.guardband_ps();
    row.bounded_gb_ps = bounded.report.guardband_ps();
    row.dynamic_gb_ps = dyn.report.guardband_ps();
    row.candidate_corners = bounded.candidate_corners;
    rows.push_back(row);

    std::printf("%-8s %5zu inst  static %8.1f ps  bounded %8.1f ps (-%5.1f)  "
                "dynamic %8.1f ps  analyze %7.2f ms vs sim %8.2f ms (%.0fx)\n",
                row.name.c_str(), row.instances, row.static_gb_ps, row.bounded_gb_ps,
                row.static_gb_ps - row.bounded_gb_ps, row.dynamic_gb_ps, row.analyze_ms,
                row.simulate_ms,
                row.analyze_ms > 0.0 ? row.simulate_ms / row.analyze_ms : 0.0);
    std::fflush(stdout);
    if (row.bounded_gb_ps > row.static_gb_ps + 1e-6) {
      std::printf("ERROR: bounded-static guardband exceeds the one-corner static "
                  "worst case on %s\n",
                  row.name.c_str());
      return 1;
    }
  }

  std::printf(
      "\nShape check: bounded-static sits between the dynamic (one workload,\n"
      "no guarantee) and the one-corner static worst case (sound but loose) —\n"
      "sound for EVERY workload admitted by the input model, at a fraction of\n"
      "the margin whenever the interval analysis proves activity bounds.\n");
  bench::print_quarantine_report(bench::factory());
  write_json(json_out, kYears, rows);
  return 0;
}
