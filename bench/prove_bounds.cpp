/// Certified-bound study over the paper's benchmark circuits: for every
/// circuit, `rwprove`'s interval STA proves an aged critical-path interval
/// (no simulation), and three RNG workloads driven through the dynamic flow
/// (Fig. 4(b)) must land *inside* it. Records, per circuit, the proven
/// interval under the default [0, 1] input model and under a narrowed
/// [0.1, 0.9] model, the one-corner static and per-seed dynamic guardbands,
/// and the prove-vs-simulate wall time into BENCH_prove.json.
///
/// Flags:
///   --json-out=PATH   baseline path (default: BENCH_prove.json)
///   --circuits=N      first N benchmark circuits only (0 = all)
///   --threads N       characterization/evaluation threads
///
/// Invariants checked here (exit 1 on violation; also in
/// tests/prove_test.cpp):
///   interval.lo <= dynamic aged CP <= interval.hi   for every seed, under
///                                                   both input models, and
///   proven upper-bound guardband >= every dynamic guardband.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "flow/guardband_flow.hpp"
#include "flow/prove_flow.hpp"
#include "stress/analyzer.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Row {
  std::string name;
  std::size_t instances = 0;
  std::size_t candidate_corners = 0;
  double fresh_cp_ps = 0.0;
  rw::stress::RealInterval proven_ps;         // default [0, 1] input model
  rw::stress::RealInterval proven_narrow_ps;  // narrowed [0.1, 0.9] model
  double static_gb_ps = 0.0;
  std::vector<double> dynamic_aged_ps;  // one entry per workload seed
  double prove_ms = 0.0;
  double simulate_ms = 0.0;  // all workload seeds together
};

template <typename... Args>
void appendf(std::string& s, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  s += buf;
}

void write_json(const std::string& path, double years, const std::vector<Row>& rows) {
  std::string out;
  appendf(out, "{\n  \"years\": %.1f,\n  \"lambda_step\": 0.1,\n", years);
  appendf(out, "  \"narrow_input_model\": [0.1, 0.9],\n");
  appendf(out, "  \"circuits\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    appendf(out, "    \"%s\": {\n", r.name.c_str());
    appendf(out, "      \"instances\": %zu,\n", r.instances);
    appendf(out, "      \"candidate_corners\": %zu,\n", r.candidate_corners);
    appendf(out, "      \"fresh_cp_ps\": %.4f,\n", r.fresh_cp_ps);
    appendf(out, "      \"proven_aged_ps\": {\"lo\": %.4f, \"hi\": %.4f, \"width\": %.4f},\n",
            r.proven_ps.lo, r.proven_ps.hi, r.proven_ps.width());
    appendf(out,
            "      \"proven_aged_narrow_ps\": {\"lo\": %.4f, \"hi\": %.4f, "
            "\"width\": %.4f},\n",
            r.proven_narrow_ps.lo, r.proven_narrow_ps.hi, r.proven_narrow_ps.width());
    appendf(out, "      \"dynamic_aged_ps\": [");
    for (std::size_t s = 0; s < r.dynamic_aged_ps.size(); ++s) {
      appendf(out, "%s%.4f", s > 0 ? ", " : "", r.dynamic_aged_ps[s]);
    }
    appendf(out, "],\n");
    double dyn_gb = 0.0;
    for (double aged : r.dynamic_aged_ps) {
      dyn_gb = std::max(dyn_gb, aged - r.fresh_cp_ps);
    }
    appendf(out,
            "      \"guardband_ps\": {\"proven_upper\": %.4f, "
            "\"one_corner_static\": %.4f, \"dynamic_max\": %.4f},\n",
            r.proven_ps.hi - r.fresh_cp_ps, r.static_gb_ps, dyn_gb);
    appendf(out,
            "      \"analysis\": {\"prove_ms\": %.3f, \"dynamic_sim_ms\": %.3f, "
            "\"speedup\": %.3f}\n",
            r.prove_ms, r.simulate_ms, r.prove_ms > 0.0 ? r.simulate_ms / r.prove_ms : 0.0);
    appendf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  appendf(out, "  }\n}\n");
  if (!rw::util::write_file_atomic_nothrow(path, out)) {
    std::fprintf(stderr, "prove baseline: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "prove baseline written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;

  // Warning-level preflight findings (e.g. SP002 on dead logic) are noise in
  // a table-producing bench; errors still reach stderr. Respects an explicit
  // override from the environment.
  setenv("RW_LINT_MIN_SEVERITY", "error", 0);

  std::string json_out = "BENCH_prove.json";
  std::size_t max_circuits = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--circuits=", 11) == 0) {
      max_circuits = static_cast<std::size_t>(std::strtoul(argv[i] + 11, nullptr, 10));
    }
  }

  constexpr double kYears = 10.0;
  constexpr int kCycles = 500;
  constexpr int kSeeds[] = {1, 2, 3};
  constexpr double kEps = 1e-6;
  bench::print_header(
      "Certified interval STA — proven aged-delay bounds vs one-corner static\n"
      "and simulated dynamic guardbands on the paper benchmark circuits");

  // Narrowed input model: every PI confined to [0.1, 0.9]. The RNG stimulus
  // below drives each PI at duty ~0.5 over 500 cycles, so its workloads are
  // admitted by both models and must land inside both proven intervals.
  stress::AnalyzeOptions narrow;
  narrow.default_input = stress::Interval{0.1, 0.9};

  bool violated = false;
  std::vector<Row> rows;
  for (const auto& bc : circuits::benchmark_suite()) {
    if (max_circuits > 0 && rows.size() >= max_circuits) break;
    const auto res =
        synth::synthesize(bc.build(), bench::fresh_library(), bc.name, bench::estimation_effort());
    const netlist::Module& module = res.module;

    Row row;
    row.name = bc.name;
    row.instances = module.instances().size();

    flow::ProvenGuardbandResult proven;
    row.prove_ms =
        wall_ms([&] { proven = flow::proven_guardband(module, bench::factory(), kYears); });
    const flow::ProvenGuardbandResult proven_narrow =
        flow::proven_guardband(module, bench::factory(), kYears, -1.0, narrow);
    row.fresh_cp_ps = proven.summary.fresh_cp_ps;
    row.proven_ps = proven.summary.aged_cp_ps;
    row.proven_narrow_ps = proven_narrow.summary.aged_cp_ps;
    row.candidate_corners = proven.candidate_corners;
    if (proven.summary.vacuous || proven_narrow.summary.vacuous) {
      std::printf("ERROR: vacuous proof on %s — missing bracket corners\n", row.name.c_str());
      violated = true;
    }

    const auto worst =
        flow::static_guardband(module, bench::factory(), aging::AgingScenario::worst_case(kYears));
    row.static_gb_ps = worst.guardband_ps();

    for (const int seed : kSeeds) {
      util::Rng rng(static_cast<std::uint64_t>(seed));
      const flow::Stimulus stimulus = [&](logicsim::CycleSimulator& sim, int) {
        for (netlist::NetId pi : module.inputs()) {
          if (pi != module.clock()) sim.set_input(pi, rng.chance(0.5));
        }
      };
      std::optional<flow::DynamicAgingResult> dyn;
      row.simulate_ms += wall_ms([&] {
        dyn.emplace(
            flow::dynamic_workload_guardband(module, bench::factory(), stimulus, kCycles, kYears));
      });
      row.dynamic_aged_ps.push_back(dyn->report.aged_cp_ps);

      // The certified invariants: every simulated workload's aged critical
      // path lies inside both proven intervals, below the proven upper bound.
      for (const auto* iv : {&row.proven_ps, &row.proven_narrow_ps}) {
        if (dyn->report.aged_cp_ps < iv->lo - kEps || dyn->report.aged_cp_ps > iv->hi + kEps) {
          std::printf("ERROR: %s seed %d: dynamic aged CP %.4f ps escapes the proven "
                      "interval [%.4f, %.4f] ps\n",
                      row.name.c_str(), seed, dyn->report.aged_cp_ps, iv->lo, iv->hi);
          violated = true;
        }
      }
      if (dyn->report.guardband_ps() > row.proven_ps.hi - row.fresh_cp_ps + kEps) {
        std::printf("ERROR: %s seed %d: dynamic guardband %.4f ps exceeds the proven "
                    "upper bound %.4f ps\n",
                    row.name.c_str(), seed, dyn->report.guardband_ps(),
                    row.proven_ps.hi - row.fresh_cp_ps);
        violated = true;
      }
    }
    rows.push_back(row);

    double dyn_max = 0.0;
    for (double aged : row.dynamic_aged_ps) dyn_max = std::max(dyn_max, aged);
    std::printf("%-8s %5zu inst  proven [%8.1f, %8.1f] ps  dyn<=%8.1f ps  "
                "static gb %7.1f ps  prove %7.2f ms vs sim %8.2f ms (%.0fx)\n",
                row.name.c_str(), row.instances, row.proven_ps.lo, row.proven_ps.hi, dyn_max,
                row.static_gb_ps, row.prove_ms, row.simulate_ms,
                row.prove_ms > 0.0 ? row.simulate_ms / row.prove_ms : 0.0);
    std::fflush(stdout);
  }

  std::printf(
      "\nShape check: the dynamic flow measures ONE workload per seed; the\n"
      "proven interval bounds them ALL. Narrowing the input model tightens\n"
      "the interval without ever excluding an admitted workload.\n");
  bench::print_quarantine_report(bench::factory());
  write_json(json_out, kYears, rows);
  if (violated) {
    std::printf("FAILED: a certified bound was violated (see ERROR lines above)\n");
    return 1;
  }
  return 0;
}
