/// Reproduces Fig. 5(a): guardband estimation with the state-of-the-art
/// "Vth-only" aging model vs the full (Vth + mobility) model, per circuit.
/// Paper result: neglecting the µ degradation under-estimates the required
/// guardband by 19 % on average.

#include <vector>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header(
      "Fig. 5(a) — guardband under-estimation when mobility degradation is\n"
      "neglected (worst-case aging, 10-year lifetime)");

  const auto& fresh = bench::fresh_library();
  const auto& full = bench::worst_library();
  const auto& vth_only = bench::factory().library(flow::worst_case_vth_only(10));

  std::printf("%-9s %10s %12s %12s %9s\n", "circuit", "CP [ps]", "GB both[ps]", "GB Vth[ps]",
              "delta");
  std::vector<double> deltas;
  for (const auto& bc : circuits::benchmark_suite()) {
    const auto res = synth::synthesize(bc.build(), fresh, bc.name, bench::estimation_effort());
    const double cp = sta::Sta(res.module, fresh).critical_delay_ps();
    const double gb_full = sta::Sta(res.module, full).critical_delay_ps() - cp;
    const double gb_vth = sta::Sta(res.module, vth_only).critical_delay_ps() - cp;
    const double delta = 100.0 * (gb_vth - gb_full) / gb_full;
    deltas.push_back(delta);
    std::printf("%-9s %10.1f %12.1f %12.1f %+8.1f%%\n", bc.name.c_str(), cp, gb_full, gb_vth,
                delta);
  }
  std::printf("%-9s %35s %+8.1f%%   (paper: -19%%)\n", "Average", "", util::mean(deltas));
  std::printf(
      "\nPaper shape check: the Vth-only model under-estimates the guardband\n"
      "in every circuit; both Vth AND mu must be modeled.\n");
  return 0;
}
