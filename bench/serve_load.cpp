/// \file serve_load.cpp
/// rwserved load harness: forks a real daemon (Server::run over a private
/// disk cache) per configuration, drives it with forked client processes
/// issuing characterize requests over the 6-pair (2 scenarios x 3 cells)
/// working set, and reports per-request latency percentiles plus end-to-end
/// throughput for every (daemons x workers x clients x cold|warm-cache) cell
/// of the matrix — including two-daemon fleet cells where both daemons share
/// one cache directory and clients are split round-robin across the fleet.
/// Writes BENCH_serve.json; exits non-zero if any request fails or
/// any daemon refuses a clean drain, so the bench doubles as a load-path
/// regression gate.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "aging/scenario.hpp"
#include "bench/common.hpp"
#include "charlib/factory.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"

namespace fs = std::filesystem;

namespace {

constexpr int kRequestsPerClient = 18;  // 3 laps over the 6-pair working set

double now_ms(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The serve data plane under test: coarse grid, 3-cell catalog — the same
/// shape the chaos campaign exercises, so latencies here are comparable to
/// its wall clocks.
rw::charlib::LibraryFactory::Options bench_factory_options(const std::string& cache_dir) {
  rw::charlib::LibraryFactory::Options o;
  o.characterize.grid = rw::charlib::OpcGrid::coarse();
  o.cell_subset = {"INV_X1", "NAND2_X1", "DFF_X1"};
  o.cache_dir = cache_dir;
  return o;
}

std::vector<rw::aging::AgingScenario> bench_scenarios() {
  return {rw::aging::AgingScenario{0.3, 0.3, 10.0, true},
          rw::aging::AgingScenario{0.7, 0.7, 10.0, true}};
}

/// Short socket path (sun_path caps at ~100 bytes), unique per run cell and
/// per daemon within a fleet.
std::string socket_path_for(int run_index, int daemon_index) {
  return "/tmp/rwserve_ld_" + std::to_string(::getpid()) + "_" + std::to_string(run_index) +
         "_" + std::to_string(daemon_index) + ".sock";
}

/// Forks a real daemon running Server::run(); the child never returns.
pid_t spawn_daemon(const rw::serve::ServeOptions& options) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  rw::flow::cancel_token().clear();
  rw::flow::install_signal_handlers();  // SIGTERM drains, as in the rwserved CLI
  int code = 2;
  try {
    rw::serve::Server server(options);
    code = server.run();
  } catch (...) {
  }
  _exit(code);
}

/// waitpid with a deadline; true when the child was reaped.
bool wait_child(pid_t pid, int timeout_ms, int& status) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const pid_t got = waitpid(pid, &status, WNOHANG);
    if (got == pid) return true;
    if (got < 0) return false;
    if (now_ms(t0) > timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// One client process: issues kRequestsPerClient characterize requests with
/// unique idempotent ids, timing each round trip, then publishes the latency
/// list (one "%.3f" ms per line) atomically for the parent to aggregate.
pid_t spawn_client(const std::string& socket_path, int run_index, int client_index,
                   const std::string& latency_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  int code = 0;
  std::string lines;
  try {
    rw::serve::ClientOptions copt;
    copt.socket_path = socket_path;
    rw::serve::ServeClient client(copt);
    const auto scenarios = bench_scenarios();
    const std::vector<std::string> cells = {"INV_X1", "NAND2_X1", "DFF_X1"};
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const rw::aging::AgingScenario& sc = scenarios[(i / cells.size()) % scenarios.size()];
      rw::serve::Request req;
      req.id = "ld-" + std::to_string(run_index) + "-" + std::to_string(client_index) + "-" +
               std::to_string(i);
      req.op = "characterize";
      req.cell = cells[i % cells.size()];
      req.lambda_p = sc.lambda_p;
      req.lambda_n = sc.lambda_n;
      req.years = sc.years;
      req.include_mobility = sc.include_mobility;
      const auto t0 = std::chrono::steady_clock::now();
      const rw::serve::Response resp = client.request(req);
      const double dt = now_ms(t0);
      if (resp.status != "ok" || resp.library.empty()) {
        lines = "ERROR response " + resp.status + ": " + resp.error + "\n";
        code = 1;
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f\n", dt);
      lines += buf;
    }
  } catch (const std::exception& e) {
    lines = std::string("ERROR ") + e.what() + "\n";
    code = 1;
  }
  rw::util::write_file_atomic_nothrow(latency_path, lines);
  _exit(code);
}

struct RunResult {
  int daemons = 1;
  int workers = 0;
  int clients = 0;
  std::string cache;  // "cold" | "warm"
  int requests = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool ok = false;
  std::string detail;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

/// One matrix cell: a fleet of `daemons` daemons sharing one cache directory
/// (daemons == 1 is the classic single-daemon cell), C clients split
/// round-robin across the fleet x kRequestsPerClient requests, graceful
/// drain via op=shutdown to every daemon, percentiles over the merged
/// latencies.
RunResult run_one(int run_index, int daemons, int workers, int clients,
                  const std::string& cache_kind, const std::string& cache_dir,
                  const std::string& work_root) {
  RunResult r;
  r.daemons = daemons;
  r.workers = workers;
  r.clients = clients;
  r.cache = cache_kind;

  std::vector<std::string> socket_paths;
  std::vector<pid_t> fleet;
  const auto finish = [&](bool ok, std::string detail) {
    for (pid_t& pid : fleet) {
      if (pid <= 0) continue;
      ::kill(pid, SIGKILL);
      int status = 0;
      (void)wait_child(pid, 5000, status);
      pid = -1;
    }
    for (const std::string& path : socket_paths) ::unlink(path.c_str());
    r.ok = ok;
    r.detail = std::move(detail);
    return r;
  };
  for (int d = 0; d < daemons; ++d) {
    socket_paths.push_back(socket_path_for(run_index, d));
    rw::serve::ServeOptions options;
    options.socket_path = socket_paths.back();
    options.workers = workers;
    options.factory = bench_factory_options(cache_dir);
    const pid_t pid = spawn_daemon(options);
    fleet.push_back(pid);
    if (pid < 0) return finish(false, "daemon fork failed");
  }

  if (cache_kind == "warm") {
    // A warm row measures the steady-state hit path, so prime it before the
    // clock starts: one untimed lap over the working set against every
    // daemon. This also absorbs the daemons' socket-bind latency, which
    // would otherwise be billed to the first timed request.
    for (int d = 0; d < daemons; ++d) {
      try {
        rw::serve::ClientOptions copt;
        copt.socket_path = socket_paths[d];
        rw::serve::ServeClient client(copt);
        int i = 0;
        for (const auto& sc : bench_scenarios()) {
          for (const std::string cell : {"INV_X1", "NAND2_X1", "DFF_X1"}) {
            rw::serve::Request req;
            req.id = "warmup-" + std::to_string(run_index) + "-" + std::to_string(d) + "-" +
                     std::to_string(i++);
            req.op = "characterize";
            req.cell = cell;
            req.lambda_p = sc.lambda_p;
            req.lambda_n = sc.lambda_n;
            req.years = sc.years;
            req.include_mobility = sc.include_mobility;
            const rw::serve::Response resp = client.request(req);
            if (resp.status != "ok") {
              return finish(false, "warmup response " + resp.status + ": " + resp.error);
            }
          }
        }
      } catch (const std::exception& e) {
        return finish(false, std::string("warmup failed: ") + e.what());
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> kids;
  std::vector<std::string> latency_paths;
  for (int c = 0; c < clients; ++c) {
    const std::string path =
        work_root + "/lat_" + std::to_string(run_index) + "_" + std::to_string(c) + ".txt";
    const pid_t kid = spawn_client(socket_paths[c % daemons], run_index, c, path);
    if (kid < 0) return finish(false, "client fork failed");
    kids.push_back(kid);
    latency_paths.push_back(path);
  }
  for (const pid_t kid : kids) {
    int status = 0;
    if (!wait_child(kid, 600000, status)) return finish(false, "client timed out");
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::string detail = "client failed";
      for (const std::string& path : latency_paths) {
        std::ifstream in(path);
        std::string line;
        if (std::getline(in, line) && line.rfind("ERROR", 0) == 0) detail = line;
      }
      return finish(false, detail);
    }
  }
  r.wall_ms = now_ms(t0);

  std::vector<double> latencies;
  for (const std::string& path : latency_paths) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("ERROR", 0) == 0) return finish(false, line);
      latencies.push_back(std::strtod(line.c_str(), nullptr));
    }
  }
  r.requests = static_cast<int>(latencies.size());
  if (r.requests != clients * kRequestsPerClient) {
    return finish(false, "latency count mismatch: " + std::to_string(r.requests));
  }
  std::sort(latencies.begin(), latencies.end());
  r.p50_ms = percentile(latencies, 50.0);
  r.p99_ms = percentile(latencies, 99.0);
  r.throughput_rps = r.wall_ms > 0.0 ? 1000.0 * r.requests / r.wall_ms : 0.0;

  // Graceful drain: op=shutdown must answer ok and every daemon must exit 0.
  for (int d = 0; d < daemons; ++d) {
    try {
      rw::serve::ClientOptions copt;
      copt.socket_path = socket_paths[d];
      rw::serve::ServeClient client(copt);
      rw::serve::Request req;
      req.id = "ld-" + std::to_string(run_index) + "-shutdown-" + std::to_string(d);
      req.op = "shutdown";
      const rw::serve::Response resp = client.request(req);
      if (resp.status != "ok") return finish(false, "shutdown response " + resp.status);
    } catch (const std::exception& e) {
      return finish(false, std::string("shutdown request failed: ") + e.what());
    }
    int status = 0;
    if (!wait_child(fleet[d], 30000, status) || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      return finish(false, "daemon did not drain to exit 0");
    }
    fleet[d] = -1;
  }
  return finish(true, "");
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  rw::util::io::ignore_sigpipe();
  // Daemons and clients are forked below; a live pool thread in the parent
  // would be duplicated into every child in a locked, unusable state.
  rw::util::set_shared_thread_count(1);
  rw::bench::print_header("rwserved load: latency percentiles and throughput");

  const std::string work_root = "serve_load_work";
  std::error_code ec;
  fs::remove_all(work_root, ec);
  fs::create_directories(work_root, ec);

  std::vector<RunResult> runs;
  bool all_ok = true;
  int run_index = 0;
  std::printf("%-7s  %-7s  %-7s  %-5s  %8s  %8s  %8s  %9s\n", "daemons", "workers", "clients",
              "cache", "p50_ms", "p99_ms", "wall_ms", "req_per_s");
  const auto report = [&](RunResult r) {
    all_ok = all_ok && r.ok;
    if (r.ok) {
      std::printf("%-7d  %-7d  %-7d  %-5s  %8.3f  %8.3f  %8.1f  %9.1f\n", r.daemons, r.workers,
                  r.clients, r.cache.c_str(), r.p50_ms, r.p99_ms, r.wall_ms, r.throughput_rps);
    } else {
      std::printf("%-7d  %-7d  %-7d  %-5s  FAILED: %s\n", r.daemons, r.workers, r.clients,
                  r.cache.c_str(), r.detail.c_str());
    }
    runs.push_back(std::move(r));
  };
  for (const int workers : {1, 2}) {
    for (const int clients : {1, 4}) {
      // Cold fills this matrix cell's private cache; warm replays the same
      // request mix against a fresh daemon over the now-populated cache.
      const std::string cache_dir = work_root + "/cache_w" + std::to_string(workers) + "_c" +
                                    std::to_string(clients);
      for (const std::string cache_kind : {"cold", "warm"}) {
        report(run_one(run_index++, /*daemons=*/1, workers, clients, cache_kind, cache_dir,
                       work_root));
      }
    }
  }
  // Fleet cells: two daemons cooperating over ONE shared cache directory,
  // clients split round-robin across the fleet. Cold exercises cross-process
  // dedup (both daemons racing to characterize the same 6 pairs under
  // per-entry leases); warm measures the horizontally scaled hit path.
  for (const int workers : {1, 2}) {
    const int clients = 4;
    const std::string cache_dir = work_root + "/cache_fleet_w" + std::to_string(workers);
    for (const std::string cache_kind : {"cold", "warm"}) {
      report(run_one(run_index++, /*daemons=*/2, workers, clients, cache_kind, cache_dir,
                     work_root));
    }
  }

  std::string json = "{\n  \"bench\": \"serve_load\",\n  \"grid\": \"coarse\",\n";
  json += "  \"cells\": 3,\n  \"scenarios\": 2,\n  \"requests_per_client\": " +
          std::to_string(kRequestsPerClient) + ",\n  \"all_ok\": " +
          (all_ok ? std::string("true") : std::string("false")) + ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    char row[512];
    std::snprintf(row, sizeof row,
                  "    {\"daemons\": %d, \"workers\": %d, \"clients\": %d, \"cache\": \"%s\", "
                  "\"requests\": %d, \"ok\": %s, \"wall_ms\": %.3f, "
                  "\"throughput_rps\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                  r.daemons, r.workers, r.clients, r.cache.c_str(), r.requests,
                  r.ok ? "true" : "false", r.wall_ms, r.throughput_rps, r.p50_ms, r.p99_ms,
                  i + 1 < runs.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";
  rw::util::write_file_atomic("BENCH_serve.json", json);
  std::printf("%s\nwrote BENCH_serve.json\n",
              all_ok ? "serve load contract held for every run" : "SERVE LOAD RUN FAILED");

  rw::util::set_shared_thread_count(0);
  return all_ok ? 0 : 2;
}
