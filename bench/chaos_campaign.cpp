/// \file chaos_campaign.cpp
/// Chaos-campaign reproduction harness: 25 seeded failure-injection trials
/// over the orchestrated dynamic-workload guardband flow (see
/// src/flow/chaos.hpp for the contract each trial asserts). Prints the
/// per-trial outcomes plus the histogram and writes BENCH_chaos.json; the
/// process exits non-zero if any trial violates the crash-only contract, so
/// the bench doubles as a long-form regression gate. $RW_CHAOS_SEED shifts
/// the seed base without recompiling.

#include <cstdint>
#include <cstdlib>

#include "bench/common.hpp"
#include "flow/cancel.hpp"
#include "flow/chaos.hpp"
#include "util/atomic_file.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();
  rw::bench::print_header("Chaos campaign: crash-only contract over the guardband flow");

  std::uint64_t base_seed = 1;
  if (const char* env = std::getenv("RW_CHAOS_SEED"); env != nullptr && *env != '\0') {
    base_seed = std::strtoull(env, nullptr, 10);
  }
  constexpr int kTrials = 25;
  const rw::flow::ChaosCampaignResult campaign =
      rw::flow::run_chaos_campaign(base_seed, kTrials, "chaos_campaign");

  std::printf("%-6s  %-9s  %-20s  %s\n", "seed", "kind", "outcome", "wall_ms");
  for (const rw::flow::ChaosTrialResult& t : campaign.trials) {
    std::printf("%-6llu  %-9s  %-20s  %9.1f\n", static_cast<unsigned long long>(t.seed),
                t.kind.c_str(), t.outcome.c_str(), t.wall_ms);
  }
  std::printf("histogram:");
  for (const auto& [outcome, count] : campaign.histogram) {
    std::printf("  %s=%d", outcome.c_str(), count);
  }
  std::printf("\n%s\n", campaign.all_good ? "chaos contract held for every trial"
                                          : "CHAOS CONTRACT VIOLATED");

  rw::util::write_file_atomic("BENCH_chaos.json",
                              rw::flow::campaign_json(campaign, base_seed));
  std::printf("wrote BENCH_chaos.json\n");
  return campaign.all_good ? 0 : 2;
}
