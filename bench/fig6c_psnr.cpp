/// Reproduces Fig. 6(c): PSNR of the DCT->quantize->IDCT image chain under
/// aging, from gate-level timing simulation with SDF-style delays. All
/// scenarios run at the SAME clock period — the fresh critical delay of the
/// conventionally-synthesized design (max performance without aging), with
/// no guardband — exactly the paper's setup. Paper numbers: unaged ~high
/// quality; aging-unaware design collapses (9 dB after 1 worst-case year,
/// 19 dB after 1 balanced year); the aging-aware design keeps the unaged
/// quality.

#include "bench/common.hpp"
#include "image/chain.hpp"
#include "netlist/sdf.hpp"
#include "sta/analysis.hpp"

namespace {

using namespace rw;

struct Design {
  synth::SynthesisResult dct;
  synth::SynthesisResult idct;
};

double run_scenario(const Design& d, const liberty::Library& lib, double period_ps,
                    const image::Image& img, const image::QuantTable& quant) {
  const sta::Sta sd(d.dct.module, lib);
  const sta::Sta si(d.idct.module, lib);
  const auto ad = netlist::compute_delay_annotation(sd);
  const auto ai = netlist::compute_delay_annotation(si);
  image::TimedVectorPort pd(d.dct.module, lib, ad, period_ps, "x", 12, "y", 12);
  image::TimedVectorPort pi(d.idct.module, lib, ai, period_ps, "y", 12, "x", 12);
  return image::run_dct_idct_chain(img, pd, pi, quant).psnr_db;
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  bench::print_header(
      "Fig. 6(c) — image quality (PSNR) of the DCT-IDCT chain under aging,\n"
      "no guardband, all scenarios at the fresh conventional design's period");

  auto& factory = bench::factory();
  const auto& fresh = bench::fresh_library();
  const auto& worst10 = bench::worst_library(10);

  const Design conv{synth::synthesize(circuits::make_dct8(), fresh, "dct", bench::full_effort()),
                    synth::synthesize(circuits::make_idct8(), fresh, "idct",
                                      bench::full_effort())};
  const Design aware{
      synth::synthesize(circuits::make_dct8(), worst10, "dct_aw", bench::full_effort()),
      synth::synthesize(circuits::make_idct8(), worst10, "idct_aw", bench::full_effort())};

  const double period = std::max(sta::Sta(conv.dct.module, fresh).critical_delay_ps(),
                                 sta::Sta(conv.idct.module, fresh).critical_delay_ps());
  std::printf("clock period (fresh conventional maximum performance): %.1f ps\n", period);

  const image::Image img = image::make_synthetic_image(64, 64);
  const auto quant = image::QuantTable::jpeg_luma(1.0);
  image::ReferenceDct rdct;
  image::ReferenceIdct ridct;
  std::printf("software golden chain PSNR (quantization-limited): %.1f dB\n\n",
              image::run_dct_idct_chain(img, rdct, ridct, quant).psnr_db);

  struct Row {
    const char* label;
    const Design* design;
    aging::AgingScenario scenario;
  };
  const Row rows[] = {
      {"aging-unaware @ unaged", &conv, aging::AgingScenario::fresh()},
      {"aging-unaware @ balance 1y", &conv, aging::AgingScenario::balanced(1)},
      {"aging-unaware @ balance 10y", &conv, aging::AgingScenario::balanced(10)},
      {"aging-unaware @ worst 1y", &conv, aging::AgingScenario::worst_case(1)},
      {"aging-unaware @ worst 10y", &conv, aging::AgingScenario::worst_case(10)},
      {"aging-aware   @ unaged", &aware, aging::AgingScenario::fresh()},
      {"aging-aware   @ worst 1y", &aware, aging::AgingScenario::worst_case(1)},
      {"aging-aware   @ worst 3y", &aware, aging::AgingScenario::worst_case(3)},
      {"aging-aware   @ worst 5y", &aware, aging::AgingScenario::worst_case(5)},
      {"aging-aware   @ worst 10y", &aware, aging::AgingScenario::worst_case(10)},
  };
  std::printf("%-30s %10s %s\n", "scenario", "PSNR [dB]", "(30 dB = acceptable)");
  for (const Row& row : rows) {
    const auto& lib = factory.library(row.scenario);
    const double psnr = run_scenario(*row.design, lib, period, img, quant);
    std::printf("%-30s %10.1f %s\n", row.label, psnr,
                psnr >= image::kAcceptablePsnrDb ? "ok" : "UNACCEPTABLE");
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check: the aging-unaware design collapses under worst-case\n"
      "stress within one year (paper: 9 dB) and under balanced stress later\n"
      "(paper: 19 dB at 1 y). The paper's aware design holds unaged quality for\n"
      "10 years; ours does not separate from the unaware one — its contained\n"
      "guardband is within our optimizer's variance (EXPERIMENTS.md, Note A).\n");
  return 0;
}
