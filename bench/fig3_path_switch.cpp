/// Reproduces Fig. 3 of the paper: two transistor-level paths, both under
/// identical worst-case stress, whose criticality *switches* with aging —
/// the initially-critical path ages mildly while the initially-faster one
/// ages badly and overtakes it. All delays here are measured with the
/// transient circuit simulator (the paper used HSPICE).

#include <optional>
#include <vector>

#include "bench/common.hpp"
#include "cells/catalog.hpp"
#include "cells/function.hpp"
#include "charlib/characterizer.hpp"
#include "spice/measure.hpp"
#include "spice/solver.hpp"

namespace {

using namespace rw;

struct StageResult {
  std::string cell;
  double delay_ps;
};

struct PathResult {
  std::vector<StageResult> stages;
  double total_ps = 0.0;
};

/// Simulates a chain of cells at transistor level. Side inputs are tied to
/// the non-controlling value so the transition propagates through pin A.
std::optional<PathResult> simulate_path(const std::vector<std::string>& cell_names,
                                        const aging::AgingScenario& scenario, double in_slew_ps,
                                        double load_ff) {
  const charlib::CharacterizeOptions opts;
  const double vdd = opts.tech.vdd_v;
  spice::Circuit c;
  const auto vdd_node = c.add_node("VDD");
  c.add_source(vdd_node, spice::Pwl::dc(vdd));
  const auto in = c.add_node("IN");
  c.add_source(in, spice::Pwl::ramp(50.0, in_slew_ps, 0.0, vdd));

  std::vector<spice::NodeId> taps = {in};
  std::vector<bool> inverts;
  spice::NodeId prev = in;
  for (std::size_t i = 0; i < cell_names.size(); ++i) {
    const auto& spec = cells::find_cell(cell_names[i]);
    // Sensitizing side values: output must follow pin A. Search patterns.
    std::vector<bool> side_values(spec.inputs.size(), false);
    bool found = false;
    for (std::uint64_t pat = 0; pat < (1ULL << spec.inputs.size()) && !found; ++pat) {
      std::vector<bool> lo(spec.inputs.size());
      std::vector<bool> hi(spec.inputs.size());
      for (std::size_t p = 0; p < spec.inputs.size(); ++p) {
        const bool v = ((pat >> p) & 1ULL) != 0;
        lo[p] = p == 0 ? false : v;
        hi[p] = p == 0 ? true : v;
      }
      if (cells::eval_cell(spec, lo) != cells::eval_cell(spec, hi)) {
        side_values = lo;
        found = true;
      }
    }
    if (!found) return std::nullopt;
    inverts.push_back(cells::arc_unateness(spec, spec.inputs[0]) < 0);

    std::vector<std::pair<std::string, spice::NodeId>> bindings = {{"A", prev}};
    for (std::size_t p = 1; p < spec.inputs.size(); ++p) {
      const auto side = c.add_node("side" + std::to_string(i) + "_" + std::to_string(p));
      c.add_source(side, spice::Pwl::dc(side_values[p] ? vdd : 0.0));
      bindings.emplace_back(spec.inputs[p], side);
    }
    prev = charlib::append_cell_instance(c, spec, scenario, opts, "u" + std::to_string(i) + ":",
                                         vdd_node, bindings);
    taps.push_back(prev);
  }
  c.add_capacitor(prev, spice::kGround, load_ff);

  spice::TransientOptions topt;
  topt.t_stop_ps = 50.0 + in_slew_ps / 0.8 + 400.0 * static_cast<double>(cell_names.size());
  const auto result = spice::simulate_transient(c, topt, taps);

  // 50%-crossing times stage by stage (direction alternates per inversion).
  PathResult pr;
  double t_prev = 50.0 + 0.5 * in_slew_ps / 0.8;
  bool rising = true;
  for (std::size_t i = 0; i < cell_names.size(); ++i) {
    if (inverts[i]) rising = !rising;
    const auto t = result.waveform(taps[i + 1]).last_crossing(0.5 * vdd, rising);
    if (!t) return std::nullopt;
    pr.stages.push_back({cell_names[i], *t - t_prev});
    t_prev = *t;
  }
  pr.total_ps = t_prev - (50.0 + 0.5 * in_slew_ps / 0.8);
  return pr;
}

void print_path(const char* name, const PathResult& fresh, const PathResult& aged) {
  std::printf("%s:\n", name);
  for (std::size_t i = 0; i < fresh.stages.size(); ++i) {
    const double f = fresh.stages[i].delay_ps;
    const double a = aged.stages[i].delay_ps;
    std::printf("  %-10s %7.1f ps -> %7.1f ps  (%+.1f%%)\n", fresh.stages[i].cell.c_str(), f, a,
                100.0 * (a - f) / std::max(1.0, std::abs(f)));
  }
  std::printf("  %-10s %7.1f ps -> %7.1f ps  (%+.1f%%)\n", "(total)", fresh.total_ps,
              aged.total_ps, 100.0 * (aged.total_ps / fresh.total_ps - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  bench::print_header(
      "Fig. 3 — criticality switch: the pre-aging critical path becomes\n"
      "uncritical after aging (all delays from transistor-level simulation)");

  const auto fresh = aging::AgingScenario::fresh();
  const auto worst = aging::AgingScenario::worst_case(10);

  // Candidate path pairs (driver -> 2 logic stages), chosen like the paper's
  // example: same stress everywhere, different gates hence different OPCs.
  struct Config {
    std::vector<std::string> path1;
    double slew1, load1;
    std::vector<std::string> path2;
    double slew2, load2;
  };
  const std::vector<Config> configs = {
      // Path1: NAND-flavored (mild aging). Path2: NOR-flavored (ages badly).
      {{"INV_X1", "NAND2_X1", "NAND2_X2"}, 120.0, 8.0,
       {"INV_X4", "NOR2_X1", "NOR2_X2"}, 120.0, 8.0},
      {{"INV_X1", "NAND3_X1", "NAND2_X2"}, 200.0, 10.0,
       {"INV_X4", "NOR3_X1", "NOR2_X2"}, 200.0, 10.0},
      {{"INV_X2", "AND2_X1", "NAND2_X2"}, 150.0, 6.0,
       {"INV_X4", "NOR2_X1", "OR2_X2"}, 150.0, 6.0},
  };

  for (const auto& cfg : configs) {
    const auto p1f = simulate_path(cfg.path1, fresh, cfg.slew1, cfg.load1);
    const auto p1a = simulate_path(cfg.path1, worst, cfg.slew1, cfg.load1);
    const auto p2f = simulate_path(cfg.path2, fresh, cfg.slew2, cfg.load2);
    const auto p2a = simulate_path(cfg.path2, worst, cfg.slew2, cfg.load2);
    if (!p1f || !p1a || !p2f || !p2a) continue;

    const bool critical_before = p1f->total_ps > p2f->total_ps;
    const bool critical_after = p1a->total_ps > p2a->total_ps;
    print_path("Path 1", *p1f, *p1a);
    print_path("Path 2", *p2f, *p2a);
    if (critical_before != critical_after) {
      std::printf(
          "\n==> criticality SWITCHED with aging: the %s path was critical before\n"
          "    aging and the %s path is critical after — exactly the paper's point:\n"
          "    guardbands cannot be derived from the initial critical path alone.\n",
          critical_before ? "first" : "second", critical_after ? "first" : "second");
      return 0;
    }
    std::printf("(no switch for this pair; trying the next configuration)\n\n");
  }
  std::printf("NOTE: no criticality switch found among the candidate pairs.\n");
  return 0;
}
