/// Ablation bench for the aging-model design choices DESIGN.md calls out:
/// how the guardband-relevant delay deltas react to (a) the NBTI/PBTI
/// asymmetry, (b) the AC-recovery strength of the duty-cycle factor, and
/// (c) dropping the oxide-trap component. Uses direct transistor-level
/// characterization of representative cells (no library cache), so it
/// reflects the *current* model parameters.

#include <vector>

#include "bench/common.hpp"
#include "cells/catalog.hpp"
#include "charlib/characterizer.hpp"

namespace {

using namespace rw;

/// Worst-arc delay delta [%] of a cell at a typical OPC for given BTI params.
double delta_pct(const std::string& cell, const aging::BtiParams& params) {
  charlib::CharacterizeOptions opts;
  opts.grid = charlib::OpcGrid::single(60.0, 4.0);
  opts.bti = params;
  const auto& spec = cells::find_cell(cell);
  const auto fresh = charlib::characterize_cell(spec, aging::AgingScenario::fresh(), opts);
  const auto aged = charlib::characterize_cell(spec, aging::AgingScenario::worst_case(10), opts);
  double worst = 0.0;
  for (std::size_t a = 0; a < fresh.arcs.size(); ++a) {
    for (const bool rise : {true, false}) {
      const auto& tf = rise ? fresh.arcs[a].rise : fresh.arcs[a].fall;
      const auto& ta = rise ? aged.arcs[a].rise : aged.arcs[a].fall;
      if (tf.empty()) continue;
      worst = std::max(worst, 100.0 * (ta.delay_ps.at(0, 0) - tf.delay_ps.at(0, 0)) /
                                  std::max(1.0, tf.delay_ps.at(0, 0)));
    }
  }
  return worst;
}

void run_variant(const char* label, const aging::BtiParams& params) {
  std::printf("%-34s", label);
  for (const char* cell : {"INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1"}) {
    std::printf(" %7.1f%%", delta_pct(cell, params));
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  bench::print_header(
      "Ablation — aging-model knobs vs worst-arc delay increase\n"
      "(10-year worst case, OPC = 60 ps / 4 fF)");
  std::printf("%-34s %8s %8s %8s %8s\n", "variant", "INV", "NAND2", "NOR2", "XOR2");

  run_variant("baseline", aging::BtiParams{});

  aging::BtiParams symmetric;
  symmetric.pbti_scale = 1.0;
  run_variant("PBTI = NBTI (pbti_scale 1.0)", symmetric);

  aging::BtiParams weak_pbti;
  weak_pbti.pbti_scale = 0.2;
  run_variant("weak PBTI (pbti_scale 0.2)", weak_pbti);

  aging::BtiParams no_recovery;
  no_recovery.ac_recovery = 0.0;
  run_variant("no AC recovery (S(lambda)=1)", no_recovery);

  aging::BtiParams no_ot;
  no_ot.b_ot_cm2 = 0.0;
  run_variant("no oxide traps (b_ot = 0)", no_ot);

  aging::BtiParams no_mu;
  no_mu.alpha_mu_cm2 = 0.0;
  run_variant("no mobility term (alpha_mu = 0)", no_mu);

  std::printf(
      "\nReading: the NBTI/PBTI asymmetry sets how differently rise- and\n"
      "fall-limited arcs age (the optimizer's lever); oxide traps and the\n"
      "mobility term each carry a significant share of the total delta —\n"
      "dropping the latter is the Fig. 5(a) under-estimation.\n");
  return 0;
}
