/// Switching-activity bounds study over the paper's benchmark circuits:
/// proves workload-independent per-net transition-density intervals
/// (tools/rwactivity's engine) and duels them against a 500-cycle gate-level
/// simulation — checking containment (every measured toggle rate inside its
/// proven interval) and recording interval quality (mean width, proven-quiet
/// and widened net counts) plus the analysis-vs-simulation wall-time speedup
/// into BENCH_activity.json.
///
/// Flags:
///   --json-out=PATH   baseline path (default: BENCH_activity.json)
///   --circuits=N      first N benchmark circuits only (0 = all)
///   --threads N       evaluation threads
///
/// Exits non-zero when a measured rate escapes its proven interval — the
/// same soundness oracle tests/activity_test.cpp enforces.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "logicsim/activity.hpp"
#include "logicsim/simulator.hpp"
#include "stress/activity_bounds.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Row {
  std::string name;
  std::size_t instances = 0;
  std::size_t nets = 0;
  std::size_t widened_nets = 0;
  std::size_t quiet_nets = 0;
  double mean_width_free = 0.0;      ///< unconstrained input model
  double mean_width_declared = 0.0;  ///< p, d declared in [0.4, 0.6]
  double max_measured = 0.0;
  double analyze_ms = 0.0;
  double simulate_ms = 0.0;
  std::size_t violations = 0;
};

template <typename... Args>
void appendf(std::string& s, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  s += buf;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::string out;
  appendf(out, "{\n  \"cycles\": 500,\n  \"circuits\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    appendf(out, "    \"%s\": {\n", r.name.c_str());
    appendf(out, "      \"instances\": %zu,\n", r.instances);
    appendf(out, "      \"nets\": %zu,\n", r.nets);
    appendf(out, "      \"widened_nets\": %zu,\n", r.widened_nets);
    appendf(out, "      \"quiet_nets\": %zu,\n", r.quiet_nets);
    appendf(out,
            "      \"mean_interval_width\": {\"free\": %.4f, \"declared\": %.4f},\n",
            r.mean_width_free, r.mean_width_declared);
    appendf(out, "      \"max_measured_rate\": %.4f,\n", r.max_measured);
    appendf(out, "      \"containment_violations\": %zu,\n", r.violations);
    appendf(out,
            "      \"analysis\": {\"bounds_ms\": %.3f, \"sim_ms\": %.3f, "
            "\"speedup\": %.3f}\n",
            r.analyze_ms, r.simulate_ms,
            r.analyze_ms > 0.0 ? r.simulate_ms / r.analyze_ms : 0.0);
    appendf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  appendf(out, "  }\n}\n");
  if (!rw::util::write_file_atomic_nothrow(path, out)) {
    std::fprintf(stderr, "activity baseline: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "activity baseline written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;

  // Expected info/warning findings (e.g. SP002 on dead logic) are noise in a
  // table-producing bench; errors still reach stderr.
  setenv("RW_LINT_MIN_SEVERITY", "error", 0);

  std::string json_out = "BENCH_activity.json";
  std::size_t max_circuits = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--circuits=", 11) == 0) {
      max_circuits = static_cast<std::size_t>(std::strtoul(argv[i] + 11, nullptr, 10));
    }
  }

  constexpr int kWarmup = 64;
  constexpr int kCycles = 500;
  bench::print_header(
      "Switching-activity bounds — proven toggle intervals vs a 500-cycle\n"
      "simulation on the paper benchmark circuits");

  std::vector<Row> rows;
  bool sound = true;
  for (const auto& bc : circuits::benchmark_suite()) {
    if (max_circuits > 0 && rows.size() >= max_circuits) break;
    const auto res =
        synth::synthesize(bc.build(), bench::fresh_library(), bc.name, bench::estimation_effort());
    const netlist::Module& module = res.module;

    Row row;
    row.name = bc.name;
    row.instances = module.instances().size();
    row.nets = static_cast<std::size_t>(module.net_count());

    // Two input models: the fully unconstrained one (sound for ANY workload,
    // exact containment required) and a declared box p, d ∈ [0.4, 0.6] that
    // admits the bench's Bernoulli(0.5) stimulus with finite-sample margin.
    stress::ActivityOptions declared;
    declared.probability.default_input = stress::Interval{0.4, 0.6};
    declared.default_input_density = stress::Interval{0.4, 0.6};

    // Wall-time duel: the proven declared-model bounds vs one simulated
    // workload over the same netlist.
    stress::ActivityReport free_report =
        stress::analyze_activity(module, bench::fresh_library(), {});
    stress::ActivityReport report;
    row.analyze_ms = wall_ms(
        [&] { report = stress::analyze_activity(module, bench::fresh_library(), declared); });
    row.widened_nets = report.widened_density_count();
    row.quiet_nets = report.quiet_driven_nets;

    util::Rng rng(1);
    logicsim::ActivityCollector activity(module.net_count());
    row.simulate_ms = wall_ms([&] {
      logicsim::CycleSimulator sim(module, bench::fresh_library());
      for (int cycle = 0; cycle < kWarmup + kCycles; ++cycle) {
        for (netlist::NetId pi : module.inputs()) {
          if (pi != module.clock()) sim.set_input(pi, rng.chance(0.5));
        }
        sim.evaluate();
        if (cycle >= kWarmup) activity.observe(sim);
        sim.clock_edge();
      }
    });

    // The unconstrained bounds must contain the measured rates exactly; the
    // declared-model bounds are on stationary expectations, so a 500-cycle
    // sample gets the same finite-sample slack tests/activity_test.cpp uses.
    constexpr double kSampleSlack = 0.05;
    double width_free = 0.0;
    double width_declared = 0.0;
    std::size_t width_n = 0;
    for (std::size_t net = 0; net < report.density.size(); ++net) {
      if (report.clock_fed[net] != 0) continue;  // intra-cycle toggles
      width_free += free_report.density[net].width();
      width_declared += report.density[net].width();
      ++width_n;
      const auto measured = activity.toggle_rate(static_cast<netlist::NetId>(net));
      if (!measured.has_value()) continue;
      row.max_measured = std::max(row.max_measured, *measured);
      const bool free_ok = *measured >= free_report.density[net].lo - 1e-9 &&
                           *measured <= free_report.density[net].hi + 1e-9;
      const bool declared_ok = *measured >= report.density[net].lo - kSampleSlack &&
                               *measured <= report.density[net].hi + kSampleSlack;
      if (!free_ok || !declared_ok) {
        ++row.violations;
        std::printf("ERROR: %s net %s measured %.6f outside proven %s (free %s)\n",
                    bc.name.c_str(),
                    module.net_name(static_cast<netlist::NetId>(net)).c_str(), *measured,
                    report.density[net].str().c_str(),
                    free_report.density[net].str().c_str());
      }
    }
    row.mean_width_free = width_n > 0 ? width_free / static_cast<double>(width_n) : 0.0;
    row.mean_width_declared =
        width_n > 0 ? width_declared / static_cast<double>(width_n) : 0.0;
    if (row.violations > 0) sound = false;
    rows.push_back(row);

    std::printf("%-8s %5zu inst %5zu nets  width %.3f free / %.3f declared  "
                "widened %4zu  bounds %7.2f ms vs sim %8.2f ms (%.1fx)\n",
                row.name.c_str(), row.instances, row.nets, row.mean_width_free,
                row.mean_width_declared, row.widened_nets, row.analyze_ms, row.simulate_ms,
                row.analyze_ms > 0.0 ? row.simulate_ms / row.analyze_ms : 0.0);
    std::fflush(stdout);
  }

  std::printf(
      "\nShape check: the proven intervals contain every simulated toggle rate\n"
      "at the cost of roughly ONE 500-cycle workload — and they hold for EVERY\n"
      "workload the input model admits, which no finite set of simulations does.\n");
  write_json(json_out, rows);
  return sound ? 0 : 1;
}
