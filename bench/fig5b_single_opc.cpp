/// Reproduces Fig. 5(b): guardband estimation with a single-OPC aging
/// characterization (refs [12, 13]: the aged/fresh ratio measured at one
/// operating condition applied uniformly) vs the full multi-OPC
/// degradation-aware library. Paper result: the single-OPC flow
/// over-estimates the guardband by 214 % on average.

#include <vector>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header(
      "Fig. 5(b) — guardband over-estimation with single-OPC characterization\n"
      "(single OPC = slowest slew + smallest load, as in the paper)");

  const auto& fresh = bench::fresh_library();
  const auto& aged = bench::worst_library();
  const auto grid = charlib::OpcGrid::paper();
  const auto single =
      flow::make_single_opc_library(fresh, aged, grid.slews_ps.back(), grid.loads_ff.front());

  std::printf("%-9s %10s %12s %14s %9s\n", "circuit", "CP [ps]", "GB 49-OPC", "GB 1-OPC[ps]",
              "delta");
  std::vector<double> deltas;
  for (const auto& bc : circuits::benchmark_suite()) {
    const auto res = synth::synthesize(bc.build(), fresh, bc.name, bench::estimation_effort());
    const double cp = sta::Sta(res.module, fresh).critical_delay_ps();
    const double gb_multi = sta::Sta(res.module, aged).critical_delay_ps() - cp;
    const double gb_single = sta::Sta(res.module, single).critical_delay_ps() - cp;
    const double delta = 100.0 * (gb_single - gb_multi) / gb_multi;
    deltas.push_back(delta);
    std::printf("%-9s %10.1f %12.1f %14.1f %+8.1f%%\n", bc.name.c_str(), cp, gb_multi, gb_single,
                delta);
  }
  std::printf("%-9s %37s %+8.1f%%   (paper: +214%%)\n", "Average", "", util::mean(deltas));
  std::printf(
      "\nPaper shape check: a single pessimistic OPC grossly over-estimates the\n"
      "guardband — OPC-resolved characterization is required to contain it.\n");
  return 0;
}
