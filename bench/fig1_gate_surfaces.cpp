/// Reproduces Fig. 1 of the paper: the impact of worst-case aging (λ=1,
/// 10 years) on NAND and NOR gate delays as a function of the operating
/// condition (input slew x output load). Expected shape: the NAND's rise
/// degradation grows with slew and shrinks with load (all positive); the
/// NOR's fall delay *improves* (negative delta) at large slews because NBTI
/// weakens the opposing pull-up.

#include "bench/common.hpp"

namespace {

using namespace rw;

void print_surface(const liberty::TimingTable& fresh, const liberty::TimingTable& aged,
                   const charlib::OpcGrid& grid, const char* title) {
  std::printf("\n%s — delay change [%%] (rows: input slew [ps]; cols: load [fF])\n", title);
  std::printf("%8s", "");
  for (const double load : grid.loads_ff) std::printf("%8.1f", load);
  std::printf("\n");
  for (std::size_t s = 0; s < grid.slews_ps.size(); ++s) {
    std::printf("%8.0f", grid.slews_ps[s]);
    for (std::size_t l = 0; l < grid.loads_ff.size(); ++l) {
      const double f = fresh.delay_ps.at(s, l);
      const double a = aged.delay_ps.at(s, l);
      const double pct = 100.0 * (a - f) / std::max(1.0, std::abs(f));
      std::printf("%+8.1f", pct);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  bench::print_header(
      "Fig. 1 — aging impact on NAND/NOR delay across operating conditions\n"
      "(worst-case stress lambda=1, lifetime 10 years)");
  const auto& fresh = bench::fresh_library();
  const auto& aged = bench::worst_library();
  const auto grid = rw::charlib::OpcGrid::paper();

  const auto& nand_f = fresh.at("NAND2_X1");
  const auto& nand_a = aged.at("NAND2_X1");
  print_surface(nand_f.arcs[0].rise, nand_a.arcs[0].rise, grid,
                "Fig. 1(a)  NAND2 output RISE (pull-up limited, NBTI-dominated)");

  const auto& nor_f = fresh.at("NOR2_X1");
  const auto& nor_a = aged.at("NOR2_X1");
  print_surface(nor_f.arcs[0].rise, nor_a.arcs[0].rise, grid,
                "Fig. 1(b)  NOR2 output RISE (stacked pull-up: strongest degradation)");
  print_surface(nor_f.arcs[0].fall, nor_a.arcs[0].fall, grid,
                "Fig. 1(b)  NOR2 output FALL (improves at large slews: weakened opposition)");

  std::printf(
      "\nPaper shape check: NAND degradation grows with slew, shrinks with load;\n"
      "NOR fall delta turns NEGATIVE at the largest slews (delay improves).\n");
  return 0;
}
