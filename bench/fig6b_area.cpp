/// Reproduces Fig. 6(b): the area cost of aging-aware synthesis. The paper
/// reports essentially free containment — 0.2 % area overhead on average.

#include <vector>

#include "bench/common.hpp"
#include "flow/aging_aware_synthesis.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header("Fig. 6(b) — area of conventional vs aging-aware designs");

  const auto& fresh = bench::fresh_library();
  const auto& aged = bench::worst_library();

  std::printf("%-9s %8s %16s %16s %10s\n", "circuit", "gates", "conv [um^2]", "aware [um^2]",
              "overhead");
  std::vector<double> overheads;
  for (const auto& bc : circuits::benchmark_suite()) {
    const auto r = flow::run_containment(bc.build(), fresh, aged, bc.name, bench::full_effort());
    overheads.push_back(r.area_overhead_pct());
    std::printf("%-9s %8zu %16.1f %16.1f %+9.2f%%\n", bc.name.c_str(),
                r.conventional.gate_count, r.conventional.area_um2, r.aging_aware.area_um2,
                r.area_overhead_pct());
    std::fflush(stdout);
  }
  std::printf("%-9s %42s %+9.2f%%   (paper: +0.2%%)\n", "Average", "", util::mean(overheads));
  std::printf("\nPaper shape check: containment is essentially area-neutral.\n");
  return 0;
}
