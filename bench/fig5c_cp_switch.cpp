/// Reproduces Fig. 5(c): guardband estimation that tracks only the
/// *initially*-critical path through aging ([13]) vs a full post-aging
/// analysis over all paths. Because aging can switch path criticality
/// (Fig. 3), the initial-CP-only estimate is wrong — the paper reports a
/// 6 % average under-estimation.

#include <vector>

#include "bench/common.hpp"
#include "sta/paths.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header(
      "Fig. 5(c) — mis-estimation when only the initial critical path is\n"
      "tracked through aging (CP switching neglected)");

  const auto& fresh = bench::fresh_library();
  const auto& aged = bench::worst_library();

  std::printf("%-9s %10s %12s %14s %9s %8s\n", "circuit", "CP [ps]", "GB true[ps]",
              "GB init-CP[ps]", "delta", "switch?");
  std::vector<double> deltas;
  int switches = 0;
  for (const auto& bc : circuits::benchmark_suite()) {
    const auto res = synth::synthesize(bc.build(), fresh, bc.name, bench::estimation_effort());
    const sta::Sta sta_fresh(res.module, fresh);
    const sta::Sta sta_aged(res.module, aged);
    const double cp = sta_fresh.critical_delay_ps();
    const double gb_true = sta_aged.critical_delay_ps() - cp;

    // State-of-the-art flow: age only the initially-critical path.
    const sta::TimingPath initial_cp = sta::worst_path(sta_fresh);
    const double aged_initial_path =
        sta::evaluate_path_ps(res.module, aged, initial_cp, sta_fresh.options());
    const double gb_init = aged_initial_path - cp;

    // Did the critical endpoint change with aging?
    const bool switched =
        sta::worst_path(sta_aged).endpoint.net != initial_cp.endpoint.net;
    if (switched) ++switches;

    const double delta = 100.0 * (gb_init - gb_true) / gb_true;
    deltas.push_back(delta);
    std::printf("%-9s %10.1f %12.1f %14.1f %+8.1f%% %8s\n", bc.name.c_str(), cp, gb_true, gb_init,
                delta, switched ? "yes" : "no");
  }
  std::printf("%-9s %37s %+8.1f%%   (paper: ~-6%%)\n", "Average", "", util::mean(deltas));
  std::printf("critical-endpoint switches under aging: %d / 7 circuits\n", switches);
  std::printf(
      "\nPaper shape check: tracking only the initial CP never over-covers and\n"
      "usually under-estimates — all potentially-critical paths must be timed.\n");
  return 0;
}
