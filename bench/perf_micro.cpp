/// Performance micro-benchmarks (google-benchmark) for the heavy engines:
/// the transient circuit solver (cell characterization cost), full-design
/// STA, the technology mapper, and the gate-level simulators. These back the
/// design choices called out in DESIGN.md (smooth device model, lazy
/// characterization, batched sizing, parallel characterization).
///
/// Besides the google-benchmark suite, the binary runs a characterization
/// throughput study (single cell × 49 OPCs and a full library, at 1 thread
/// vs all threads) and writes the machine-readable baseline BENCH_perf.json
/// so the perf trajectory is tracked across PRs.
///
/// Flags (consumed before google-benchmark's own):
///   --threads N      width of the N-thread measurements (default: all cores)
///   --json-only      skip the google-benchmark suite, emit BENCH_perf.json
///   --json-out=PATH  baseline path                    (default: BENCH_perf.json)
///   --json-cells=K   library study uses the first K catalog cells (0 = all)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "charlib/adaptive.hpp"
#include "charlib/characterizer.hpp"
#include "charlib/factory.hpp"
#include "spice/stats.hpp"
#include "cells/catalog.hpp"
#include "circuits/benchmarks.hpp"
#include "logicsim/simulator.hpp"
#include "logicsim/timingsim.hpp"
#include "netlist/sdf.hpp"
#include "sta/analysis.hpp"
#include "synth/decompose.hpp"
#include "synth/synthesizer.hpp"
#include "synth/mapper.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rw;

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f{};
  return f;
}
const liberty::Library& fresh() { return factory().library(aging::AgingScenario::fresh()); }

const netlist::Module& dsp_module() {
  static const netlist::Module m = [] {
    synth::SynthesisOptions opt;
    opt.multi_start = false;
    return synth::synthesize(circuits::make_dsp(), fresh(), "dsp", opt).module;
  }();
  return m;
}

void BM_TransientInverter(benchmark::State& state) {
  // One full characterization transient (ramp in, measure out).
  charlib::CharacterizeOptions opts;
  opts.grid = charlib::OpcGrid::single(60.0, 4.0);
  const auto& spec = cells::find_cell("INV_X1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charlib::characterize_cell(spec, aging::AgingScenario::fresh(), opts));
  }
}
BENCHMARK(BM_TransientInverter)->Unit(benchmark::kMillisecond);

// Single cell × 49 OPCs at a given pool width (0 = all hardware threads).
// The per-OPC transients fan out over the shared pool inside the
// characterizer; the tables are bitwise identical across widths.
void BM_CharacterizeNand2FullGrid(benchmark::State& state) {
  util::set_shared_thread_count(static_cast<std::size_t>(state.range(0)));
  charlib::CharacterizeOptions opts;  // 7x7 paper grid
  const auto& spec = cells::find_cell("NAND2_X1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charlib::characterize_cell(spec, aging::AgingScenario::fresh(), opts));
  }
  util::set_shared_thread_count(0);
}
BENCHMARK(BM_CharacterizeNand2FullGrid)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Library characterization throughput (a representative 8-cell subset × 49
// OPCs) at a given pool width; the factory fans whole cells out in parallel.
void BM_CharacterizeLibrarySubset(benchmark::State& state) {
  util::set_shared_thread_count(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    charlib::LibraryFactory::Options opts;  // 7x7 paper grid, no disk cache
    opts.cache_dir.clear();
    opts.cell_subset = {"INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1",
                        "AOI21_X1", "OAI21_X1", "MUX2_X1", "DFF_X1"};
    charlib::LibraryFactory f(opts);
    benchmark::DoNotOptimize(f.library(aging::AgingScenario::fresh()));
  }
  util::set_shared_thread_count(0);
}
BENCHMARK(BM_CharacterizeLibrarySubset)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_StaDsp(benchmark::State& state) {
  const auto& m = dsp_module();
  for (auto _ : state) {
    const sta::Sta sta(m, fresh());
    benchmark::DoNotOptimize(sta.critical_delay_ps());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.instances().size()));
}
BENCHMARK(BM_StaDsp)->Unit(benchmark::kMillisecond);

void BM_MapDsp(benchmark::State& state) {
  const synth::SubjectGraph graph = synth::decompose(circuits::make_dsp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::map_to_library(graph, fresh(), synth::MapperOptions{}, "dsp"));
  }
}
BENCHMARK(BM_MapDsp)->Unit(benchmark::kMillisecond);

void BM_CycleSimDsp(benchmark::State& state) {
  const auto& m = dsp_module();
  logicsim::CycleSimulator sim(m, fresh());
  util::Rng rng(1);
  for (auto _ : state) {
    for (netlist::NetId pi : m.inputs()) {
      if (pi != m.clock()) sim.set_input(pi, rng.chance(0.5));
    }
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.instances().size()));
}
BENCHMARK(BM_CycleSimDsp);

void BM_TimingSimDspCycle(benchmark::State& state) {
  const auto& m = dsp_module();
  const sta::Sta sta(m, fresh());
  const auto ann = netlist::compute_delay_annotation(sta);
  logicsim::TimingSimulator sim(m, fresh(), ann, sta.critical_delay_ps());
  util::Rng rng(2);
  for (auto _ : state) {
    for (netlist::NetId pi : m.inputs()) {
      if (pi != m.clock()) sim.set_input(pi, rng.chance(0.5));
    }
    sim.run_cycle();
  }
}
BENCHMARK(BM_TimingSimDspCycle)->Unit(benchmark::kMicrosecond);

void BM_NldmLookup(benchmark::State& state) {
  const auto& table = fresh().at("NAND2_X1").arcs[0].rise.delay_ps;
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(rng.uniform(5.0, 947.0), rng.uniform(0.5, 20.0)));
  }
}
BENCHMARK(BM_NldmLookup);

// ---------------------------------------------------------------------------
// Characterization throughput study -> BENCH_perf.json
// ---------------------------------------------------------------------------

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double char_cell_ms(std::size_t threads) {
  util::set_shared_thread_count(threads);
  const auto& spec = cells::find_cell("NAND2_X1");
  const charlib::CharacterizeOptions opts;  // 7x7 paper grid = 49 OPCs
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const double ms = wall_ms([&] {
      benchmark::DoNotOptimize(
          charlib::characterize_cell(spec, aging::AgingScenario::fresh(), opts));
    });
    best = rep == 0 ? ms : std::min(best, ms);
  }
  return best;
}

double char_library_ms(std::size_t threads, std::size_t max_cells) {
  util::set_shared_thread_count(threads);
  charlib::LibraryFactory::Options opts;  // 7x7 paper grid
  opts.cache_dir.clear();                 // measure characterization, not the disk cache
  if (max_cells > 0) {
    for (const auto& spec : cells::catalog()) {
      if (opts.cell_subset.size() >= max_cells) break;
      opts.cell_subset.push_back(spec.name);
    }
  }
  charlib::LibraryFactory f(opts);
  return wall_ms([&] { benchmark::DoNotOptimize(f.library(aging::AgingScenario::fresh())); });
}

void write_perf_json(const std::string& path, std::size_t n_threads, std::size_t json_cells) {
  struct Row {
    const char* name;
    double ms_1t;
    double ms_nt;
  };
  std::fprintf(stderr, "perf baseline: characterization throughput at 1 vs %zu threads...\n",
               n_threads);
  // Solver/adaptive counters are scoped to the measured studies, making the
  // perf numbers attributable (how many Newton iterations ran, how often the
  // warm start hit, how many solves interpolation avoided entirely).
  spice::reset_solver_counters();
  charlib::reset_adaptive_counters();
  const Row rows[] = {
      {"char_cell_49opc", char_cell_ms(1), char_cell_ms(n_threads)},
      {"char_library", char_library_ms(1, json_cells), char_library_ms(n_threads, json_cells)},
  };
  const spice::SolverCounters sc = spice::solver_counters();
  const charlib::AdaptiveCounters ac = charlib::adaptive_counters();
  util::set_shared_thread_count(0);

  const auto appendf = [](std::string& s, const char* fmt, auto... args) {
    char buf[512];
    std::snprintf(buf, sizeof buf, fmt, args...);
    s += buf;
  };
  std::string json;
  appendf(json, "{\n  \"threads\": %zu,\n", n_threads);
  const std::size_t library_cells =
      json_cells > 0 ? std::min(json_cells, cells::catalog().size()) : cells::catalog().size();
  appendf(json, "  \"library_cells\": %zu,\n", library_cells);
  appendf(json, "  \"benchmarks\": {\n");
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Row& r = rows[i];
    appendf(json,
            "    \"%s\": {\"wall_ms_1t\": %.3f, \"wall_ms_nt\": %.3f, "
            "\"speedup\": %.3f}%s\n",
            r.name, r.ms_1t, r.ms_nt, r.ms_nt > 0.0 ? r.ms_1t / r.ms_nt : 0.0,
            i + 1 < std::size(rows) ? "," : "");
  }
  appendf(json, "  },\n");
  // Pre-optimization reference (dense per-iteration FD-Jacobian solves,
  // nested per-cell parallel_for), measured on the same 59-cell catalog:
  // the denominator for this PR's >=5x char_library acceptance gate.
  appendf(json,
          "  \"before_sparse_workspace\": {\n"
          "    \"char_cell_49opc_wall_ms_1t\": 105.0,\n"
          "    \"char_library_wall_ms_1t\": 33300.0,\n"
          "    \"char_library_speedup_nt\": 0.994\n"
          "  },\n");
  const std::uint64_t warm_total = sc.warm_start_hits + sc.warm_start_misses;
  appendf(json, "  \"solver_counters\": {\n");
  appendf(json, "    \"newton_iterations\": %llu,\n",
          static_cast<unsigned long long>(sc.newton_iterations));
  appendf(json, "    \"factorizations\": %llu,\n",
          static_cast<unsigned long long>(sc.factorizations));
  appendf(json, "    \"dense_fallbacks\": %llu,\n",
          static_cast<unsigned long long>(sc.dense_fallbacks));
  appendf(json, "    \"dc_solves\": %llu,\n", static_cast<unsigned long long>(sc.dc_solves));
  appendf(json, "    \"transient_attempts\": %llu,\n",
          static_cast<unsigned long long>(sc.transient_attempts));
  appendf(json, "    \"warm_start_hits\": %llu,\n",
          static_cast<unsigned long long>(sc.warm_start_hits));
  appendf(json, "    \"warm_start_misses\": %llu,\n",
          static_cast<unsigned long long>(sc.warm_start_misses));
  appendf(json, "    \"warm_start_hit_rate\": %.4f,\n",
          warm_total > 0 ? static_cast<double>(sc.warm_start_hits) / warm_total : 0.0);
  appendf(json, "    \"workspace_builds\": %llu,\n",
          static_cast<unsigned long long>(sc.workspace_builds));
  appendf(json, "    \"workspace_reuses\": %llu,\n",
          static_cast<unsigned long long>(sc.workspace_reuses));
  appendf(json, "    \"cells_interpolated\": %llu,\n",
          static_cast<unsigned long long>(ac.cells_interpolated));
  appendf(json, "    \"corners_refined\": %llu,\n",
          static_cast<unsigned long long>(ac.corners_refined));
  appendf(json, "    \"solves_avoided_by_interp\": %llu\n",
          static_cast<unsigned long long>(ac.solves_avoided_by_interp));
  appendf(json, "  }\n}\n");
  if (!util::write_file_atomic_nothrow(path, json)) {
    std::fprintf(stderr, "perf baseline: cannot write %s\n", path.c_str());
    return;
  }
  for (const Row& r : rows) {
    std::fprintf(stderr, "  %-18s 1t %9.1f ms   %zut %9.1f ms   speedup %.2fx\n", r.name,
                 r.ms_1t, n_threads, r.ms_nt, r.ms_nt > 0.0 ? r.ms_1t / r.ms_nt : 0.0);
  }
  std::fprintf(stderr, "perf baseline written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t requested = util::consume_thread_flag(argc, argv);
  const std::size_t n_threads = requested > 0 ? requested : util::default_thread_count();

  bool json_only = false;
  std::string json_out = "BENCH_perf.json";
  std::size_t json_cells = 0;  // 0 = full catalog
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      json_only = true;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--json-cells=", 13) == 0) {
      json_cells = static_cast<std::size_t>(std::strtoul(argv[i] + 13, nullptr, 10));
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argv[out_argc] = nullptr;
  argc = out_argc;

  if (!json_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  write_perf_json(json_out, n_threads, json_cells);
  return 0;
}
