/// Performance micro-benchmarks (google-benchmark) for the heavy engines:
/// the transient circuit solver (cell characterization cost), full-design
/// STA, the technology mapper, and the gate-level simulators. These back the
/// design choices called out in DESIGN.md (smooth device model, lazy
/// characterization, batched sizing).

#include <benchmark/benchmark.h>

#include "charlib/characterizer.hpp"
#include "charlib/factory.hpp"
#include "cells/catalog.hpp"
#include "circuits/benchmarks.hpp"
#include "logicsim/simulator.hpp"
#include "logicsim/timingsim.hpp"
#include "netlist/sdf.hpp"
#include "sta/analysis.hpp"
#include "synth/decompose.hpp"
#include "synth/synthesizer.hpp"
#include "synth/mapper.hpp"
#include "util/rng.hpp"

namespace {

using namespace rw;

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f{};
  return f;
}
const liberty::Library& fresh() { return factory().library(aging::AgingScenario::fresh()); }

const netlist::Module& dsp_module() {
  static const netlist::Module m = [] {
    synth::SynthesisOptions opt;
    opt.multi_start = false;
    return synth::synthesize(circuits::make_dsp(), fresh(), "dsp", opt).module;
  }();
  return m;
}

void BM_TransientInverter(benchmark::State& state) {
  // One full characterization transient (ramp in, measure out).
  charlib::CharacterizeOptions opts;
  opts.grid = charlib::OpcGrid::single(60.0, 4.0);
  const auto& spec = cells::find_cell("INV_X1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charlib::characterize_cell(spec, aging::AgingScenario::fresh(), opts));
  }
}
BENCHMARK(BM_TransientInverter)->Unit(benchmark::kMillisecond);

void BM_CharacterizeNand2FullGrid(benchmark::State& state) {
  charlib::CharacterizeOptions opts;  // 7x7 paper grid
  const auto& spec = cells::find_cell("NAND2_X1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charlib::characterize_cell(spec, aging::AgingScenario::fresh(), opts));
  }
}
BENCHMARK(BM_CharacterizeNand2FullGrid)->Unit(benchmark::kMillisecond);

void BM_StaDsp(benchmark::State& state) {
  const auto& m = dsp_module();
  for (auto _ : state) {
    const sta::Sta sta(m, fresh());
    benchmark::DoNotOptimize(sta.critical_delay_ps());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.instances().size()));
}
BENCHMARK(BM_StaDsp)->Unit(benchmark::kMillisecond);

void BM_MapDsp(benchmark::State& state) {
  const synth::SubjectGraph graph = synth::decompose(circuits::make_dsp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::map_to_library(graph, fresh(), synth::MapperOptions{}, "dsp"));
  }
}
BENCHMARK(BM_MapDsp)->Unit(benchmark::kMillisecond);

void BM_CycleSimDsp(benchmark::State& state) {
  const auto& m = dsp_module();
  logicsim::CycleSimulator sim(m, fresh());
  util::Rng rng(1);
  for (auto _ : state) {
    for (netlist::NetId pi : m.inputs()) {
      if (pi != m.clock()) sim.set_input(pi, rng.chance(0.5));
    }
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.instances().size()));
}
BENCHMARK(BM_CycleSimDsp);

void BM_TimingSimDspCycle(benchmark::State& state) {
  const auto& m = dsp_module();
  const sta::Sta sta(m, fresh());
  const auto ann = netlist::compute_delay_annotation(sta);
  logicsim::TimingSimulator sim(m, fresh(), ann, sta.critical_delay_ps());
  util::Rng rng(2);
  for (auto _ : state) {
    for (netlist::NetId pi : m.inputs()) {
      if (pi != m.clock()) sim.set_input(pi, rng.chance(0.5));
    }
    sim.run_cycle();
  }
}
BENCHMARK(BM_TimingSimDspCycle)->Unit(benchmark::kMicrosecond);

void BM_NldmLookup(benchmark::State& state) {
  const auto& table = fresh().at("NAND2_X1").arcs[0].rise.delay_ps;
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(rng.uniform(5.0, 947.0), rng.uniform(0.5, 20.0)));
  }
}
BENCHMARK(BM_NldmLookup);

}  // namespace

BENCHMARK_MAIN();
