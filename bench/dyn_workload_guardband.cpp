/// Exercises the dynamic-aging-stress flow of Fig. 4(b): simulate a
/// workload, extract per-transistor duty cycles, quantize them onto the
/// paper's 0.1 λ grid, annotate the netlist (AND2_X1 -> AND2_X1_0.40_0.60),
/// time it against the merged complete library, and compare the
/// workload-specific guardband against static worst-case stress.

#include "bench/common.hpp"
#include "flow/guardband_flow.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  rw::bench::init(argc, argv);
  using namespace rw;
  bench::print_header(
      "Fig. 4(b) dynamic flow — workload-driven duty cycles vs static\n"
      "worst-case stress (DSP benchmark, 10-year lifetime)");

  const auto res = synth::synthesize(circuits::make_dsp(), bench::fresh_library(), "dsp",
                                     bench::estimation_effort());
  const auto& module = res.module;

  // Workload 1: random operands every cycle (high activity).
  // Workload 2: sparse bursts (long idle stretches -> asymmetric stress).
  struct Workload {
    const char* name;
    flow::Stimulus stimulus;
  };
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  const Workload workloads[] = {
      {"random operands", [&](logicsim::CycleSimulator& sim, int) {
         for (netlist::NetId pi : module.inputs()) {
           if (pi != module.clock()) sim.set_input(pi, rng_a.chance(0.5));
         }
       }},
      {"sparse bursts", [&](logicsim::CycleSimulator& sim, int cycle) {
         const bool active = (cycle / 32) % 4 == 0;
         for (netlist::NetId pi : module.inputs()) {
           if (pi != module.clock()) sim.set_input(pi, active && rng_b.chance(0.5));
         }
       }},
  };

  const auto worst = flow::static_guardband(module, bench::factory(),
                                            aging::AgingScenario::worst_case(10));
  std::printf("static worst-case: CP %.1f -> %.1f ps, guardband %.1f ps (%.1f%%)\n\n",
              worst.fresh_cp_ps, worst.aged_cp_ps, worst.guardband_ps(), worst.guardband_pct());

  for (const auto& w : workloads) {
    const auto dyn =
        flow::dynamic_workload_guardband(module, bench::factory(), w.stimulus, 500, 10.0);
    std::printf("workload '%s':\n", w.name);
    std::printf("  distinct quantized (lambda_p, lambda_n) corners: %zu\n", dyn.corners.size());
    std::printf("  example annotated instance: %s\n", dyn.annotated.instances()[0].cell.c_str());
    std::printf("  CP %.1f -> %.1f ps, guardband %.1f ps (%.1f%% of worst-case %.1f ps)\n\n",
                dyn.report.fresh_cp_ps, dyn.report.aged_cp_ps, dyn.report.guardband_ps(),
                100.0 * dyn.report.guardband_ps() / worst.guardband_ps(), worst.guardband_ps());
    std::fflush(stdout);
  }
  std::printf(
      "Shape check: workload-specific guardbands are below the static worst\n"
      "case (Section 4.2: worst-case stress suppresses aging under ANY workload\n"
      "at the price of margin).\n");
  bench::print_quarantine_report(bench::factory());
  return 0;
}
