/// Guardband explorer: sweeps stress duty cycle and lifetime for one
/// benchmark circuit and prints the guardband surface — the data a designer
/// needs to pick a margin for a target lifetime. Uses the full 7x7 library
/// (cached on disk after the first run).
///
/// Usage: example_guardband_explorer [--threads N] [circuit]   (default: DSP)

#include <cstdio>
#include <cstring>

#include "charlib/factory.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/guardband_flow.hpp"
#include "synth/synthesizer.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rw;
  util::consume_thread_flag(argc, argv);
  const std::string which = argc > 1 ? argv[1] : "DSP";

  const circuits::BenchmarkCircuit* chosen = nullptr;
  for (const auto& bc : circuits::benchmark_suite()) {
    if (bc.name == which) chosen = &bc;
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'; options:", which.c_str());
    for (const auto& bc : circuits::benchmark_suite()) std::fprintf(stderr, " %s", bc.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  charlib::LibraryFactory factory;
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  const auto res =
      synth::synthesize(chosen->build(), factory.library(aging::AgingScenario::fresh()),
                        chosen->name, opt);
  std::printf("%s: %zu gates, fresh CP %.1f ps\n\n", chosen->name.c_str(), res.gate_count,
              res.cp_ps);

  // Guardband vs lifetime at worst-case stress.
  std::printf("guardband vs lifetime (static worst-case stress):\n");
  std::printf("  %8s %12s %8s\n", "years", "GB [ps]", "GB %%");
  for (const double years : {1.0, 3.0, 5.0, 10.0}) {
    const auto r = flow::static_guardband(res.module, factory,
                                          aging::AgingScenario::worst_case(years));
    std::printf("  %8.0f %12.1f %7.1f%%\n", years, r.guardband_ps(), r.guardband_pct());
  }

  // Guardband vs duty cycle at 10 years (balanced stress λp = 1 - λn).
  std::printf("\nguardband vs stress duty cycle (10-year lifetime, lambda_p = 1 - lambda_n):\n");
  std::printf("  %8s %12s %8s\n", "lambda_n", "GB [ps]", "GB %%");
  for (const double ln : {0.0, 0.5, 1.0}) {
    const auto r = flow::static_guardband(
        res.module, factory, aging::AgingScenario{1.0 - ln, ln, 10.0, true});
    std::printf("  %8.1f %12.1f %7.1f%%\n", ln, r.guardband_ps(), r.guardband_pct());
  }
  std::printf("\n(worst-case lambda=1 stress on BOTH polarities bounds every workload —\n"
              "Section 4.2 of the paper.)\n");
  return 0;
}
