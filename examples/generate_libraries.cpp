/// Regenerates the paper's published artifact: the degradation-aware cell
/// libraries in Liberty text form — one library per (λp, λn) corner on the
/// 0.1-step grid (121 for the full grid) plus the merged "complete" library
/// with λ-indexed cell names (Section 4.1 of the paper).
///
/// Usage: example_generate_libraries [--threads N] [out_dir] [years] [lambda_step]
///   out_dir      output directory            (default: ./libs)
///   years        lifetime                    (default: 10)
///   lambda_step  λ grid step; 0.5 -> 9 corners, 0.1 -> 121 (default: 0.5)
///
/// The full 121-corner grid takes on the order of an hour of transient
/// simulation on one core the first time (cached afterwards, and divided by
/// the thread count — characterization runs on all cores unless --threads/
/// $RW_THREADS says otherwise); the default coarse step finishes in minutes.

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "charlib/factory.hpp"
#include "flow/libgen.hpp"
#include "liberty/merge.hpp"
#include "liberty/writer.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rw;
  util::consume_thread_flag(argc, argv);
  const std::string out_dir = argc > 1 ? argv[1] : "libs";
  const double years = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double step = argc > 3 ? std::atof(argv[3]) : 0.5;
  if (years <= 0.0 || step <= 0.0 || step > 1.0) {
    std::fprintf(stderr, "usage: %s [out_dir] [years>0] [0<lambda_step<=1]\n", argv[0]);
    return 1;
  }
  std::filesystem::create_directories(out_dir);

  charlib::LibraryFactory factory;
  const auto grid = flow::full_lambda_grid(years, step);
  std::printf("generating %zu degradation-aware libraries (+1 fresh, +1 merged) into %s/\n",
              grid.size(), out_dir.c_str());

  const auto& fresh = factory.library(aging::AgingScenario::fresh());
  liberty::write_library_file(fresh, out_dir + "/reliaware_fresh.lib");

  std::vector<liberty::ScenarioLibrary> parts;
  parts.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& scenario = grid[i];
    const liberty::Library& lib = factory.library(scenario);
    liberty::write_library_file(lib, out_dir + "/reliaware_" + scenario.id() + ".lib");
    parts.push_back({scenario, &lib});
    std::printf("  [%zu/%zu] %s (%zu cells)\n", i + 1, grid.size(), scenario.id().c_str(),
                lib.size());
    std::fflush(stdout);
  }

  const liberty::Library merged = liberty::merge_libraries(parts);
  liberty::write_library_file(merged, out_dir + "/reliaware_complete.lib");
  std::printf("merged complete library: %zu lambda-indexed cells -> %s/reliaware_complete.lib\n",
              merged.size(), out_dir.c_str());
  return 0;
}
