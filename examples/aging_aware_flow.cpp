/// The paper's full aging-aware design flow on one circuit, end to end:
///   1. synthesize conventionally (initial library) and measure the
///      guardband it would need (Fig. 4(b));
///   2. synthesize with the worst-case degradation-aware library and
///      measure the contained guardband (Fig. 4(c));
///   3. write both netlists as Verilog plus an SDF for the aged corner.
///
/// Usage: example_aging_aware_flow [--threads N] [circuit]   (default: DCT)

#include <cstdio>

#include "charlib/factory.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/aging_aware_synthesis.hpp"
#include "netlist/sdf.hpp"
#include "netlist/verilog.hpp"
#include "sta/analysis.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rw;
  util::consume_thread_flag(argc, argv);
  const std::string which = argc > 1 ? argv[1] : "DCT";
  const circuits::BenchmarkCircuit* chosen = nullptr;
  for (const auto& bc : circuits::benchmark_suite()) {
    if (bc.name == which) chosen = &bc;
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", which.c_str());
    return 1;
  }

  charlib::LibraryFactory factory;
  const auto& fresh = factory.library(aging::AgingScenario::fresh());
  const auto& aged = factory.library(aging::AgingScenario::worst_case(10));

  std::printf("running both syntheses for %s (full effort)...\n", chosen->name.c_str());
  const auto r = flow::run_containment(chosen->build(), fresh, aged, chosen->name, {});

  std::printf("\nconventional design: %zu gates, %.1f um^2\n", r.conventional.gate_count,
              r.conventional.area_um2);
  std::printf("  CP fresh %.1f ps, CP aged %.1f ps -> required guardband %.1f ps\n",
              r.conventional_fresh_cp_ps, r.conventional_aged_cp_ps, r.required_guardband_ps());
  std::printf("aging-aware design:  %zu gates, %.1f um^2 (%+.2f%% area)\n",
              r.aging_aware.gate_count, r.aging_aware.area_um2, r.area_overhead_pct());
  std::printf("  CP fresh %.1f ps, CP aged %.1f ps -> contained guardband %.1f ps\n",
              r.aware_fresh_cp_ps, r.aware_aged_cp_ps, r.contained_guardband_ps());
  std::printf("guardband reduction: %.1f%%, lifetime frequency gain: %+.1f%%\n",
              r.guardband_reduction_pct(), r.frequency_gain_pct());

  // Artifacts: netlists + aged-corner SDF, ready for external tools.
  netlist::write_verilog_file(r.conventional.module, fresh, which + "_conventional.v");
  netlist::write_verilog_file(r.aging_aware.module, fresh, which + "_aging_aware.v");
  const sta::Sta aged_sta(r.aging_aware.module, aged);
  netlist::write_sdf_file(r.aging_aware.module, aged,
                          netlist::compute_delay_annotation(aged_sta),
                          which + "_aging_aware_worst10y.sdf");
  std::printf("\nwrote %s_conventional.v, %s_aging_aware.v, %s_aging_aware_worst10y.sdf\n",
              which.c_str(), which.c_str(), which.c_str());
  return 0;
}
