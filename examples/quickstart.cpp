/// Quickstart: characterize a cell fresh vs aged, look at its NLDM tables,
/// and estimate a circuit guardband — the library's three core concepts in
/// one page.
///
/// Build & run:   ./build/examples/example_quickstart

#include <cstdio>

#include "charlib/characterizer.hpp"
#include "charlib/factory.hpp"
#include "cells/catalog.hpp"
#include "netlist/builder.hpp"
#include "sta/guardband.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rw;
  util::consume_thread_flag(argc, argv);  // --threads N (default: all cores)

  // --- 1. Characterize one cell under fresh and worst-case-aged devices ---
  // (a coarse 3x3 OPC grid keeps this instant; the flows use the 7x7 grid).
  charlib::CharacterizeOptions opts;
  opts.grid = charlib::OpcGrid::coarse();
  const auto& nand2 = cells::find_cell("NAND2_X1");
  const auto fresh_cell = charlib::characterize_cell(nand2, aging::AgingScenario::fresh(), opts);
  const auto aged_cell =
      charlib::characterize_cell(nand2, aging::AgingScenario::worst_case(10), opts);

  std::printf("NAND2_X1, input A -> Z rise delay at (slew 100 ps, load 4 fF):\n");
  const double f = fresh_cell.arcs[0].rise.delay_ps.lookup(100.0, 4.0);
  const double a = aged_cell.arcs[0].rise.delay_ps.lookup(100.0, 4.0);
  std::printf("  fresh: %.2f ps   after 10y worst-case aging: %.2f ps  (%+.1f%%)\n\n", f, a,
              100.0 * (a / f - 1.0));

  // --- 2. Build a tiny mapped netlist and run STA against both corners ---
  charlib::LibraryFactory::Options fopts;
  fopts.characterize.grid = charlib::OpcGrid::coarse();
  fopts.cell_subset = {"INV_X1", "NAND2_X1", "XOR2_X1", "DFF_X1"};
  charlib::LibraryFactory factory(fopts);
  const auto& fresh_lib = factory.library(aging::AgingScenario::fresh());
  const auto& aged_lib = factory.library(aging::AgingScenario::worst_case(10));

  netlist::Module m("demo");
  const auto in_a = m.add_net("a");
  const auto in_b = m.add_net("b");
  m.mark_input(in_a);
  m.mark_input(in_b);
  m.set_clock(m.add_net("clk"));
  netlist::NetlistBuilder builder(m, fresh_lib);
  auto x = builder.gate("XOR2_X1", {in_a, in_b});
  for (int i = 0; i < 4; ++i) x = builder.gate("NAND2_X1", {x, in_b});
  m.mark_output(builder.flop("DFF_X1", x));

  // --- 3. The guardband this little design needs to survive 10 years ---
  const auto report = sta::estimate_guardband(m, fresh_lib, aged_lib);
  std::printf("demo netlist: CP %.1f ps fresh, %.1f ps aged\n", report.fresh_cp_ps,
              report.aged_cp_ps);
  std::printf("required guardband: %.1f ps (%.1f%%); max frequency %.2f -> %.2f GHz\n",
              report.guardband_ps(), report.guardband_pct(), report.fresh_freq_ghz(),
              report.aged_freq_ghz());
  return 0;
}
