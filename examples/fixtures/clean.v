// rwlint fixture: a well-formed netlist against mini.lib — must lint clean.
module clean (input a, input b, input c, output y);
  wire n1;
  wire n2;
  wire n3;
  NAND2_X1 u1 (.A(a), .B(b), .Z(n1));
  INV_X1 u2 (.A(n1), .Z(n2));
  AND2_X1 u3 (.A(n2), .B(c), .Z(n3));
  INV_X1 u4 (.A(n3), .Z(y));
endmodule
