// rwlint fixture: a λ-annotated netlist whose corners all exist in
// merged.lib — must lint clean against it.
module annotated (input a, input b, output y);
  wire n1;
  NAND2_X1_1.00_1.00 u1 (.A(a), .B(b), .Z(n1));
  INV_X1_1.00_1.00 u2 (.A(n1), .Z(y));
endmodule
