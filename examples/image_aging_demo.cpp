/// Minimal version of the paper's system-level experiment: push an image
/// through the gate-level DCT-IDCT chain at the fresh clock period, once
/// with fresh delays and once with 1-year worst-case aged delays, and watch
/// the PSNR collapse. Writes demo_*.pgm for visual inspection.

#include <cstdio>

#include "charlib/factory.hpp"
#include "circuits/benchmarks.hpp"
#include "image/chain.hpp"
#include "netlist/sdf.hpp"
#include "sta/analysis.hpp"
#include "synth/synthesizer.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rw;
  util::consume_thread_flag(argc, argv);  // --threads N (default: all cores)
  charlib::LibraryFactory factory;
  const auto& fresh = factory.library(aging::AgingScenario::fresh());
  const auto& aged = factory.library(aging::AgingScenario::worst_case(1));

  std::printf("synthesizing DCT and IDCT with the initial library...\n");
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  const auto dct = synth::synthesize(circuits::make_dct8(), fresh, "dct", opt);
  const auto idct = synth::synthesize(circuits::make_idct8(), fresh, "idct", opt);
  const double period = std::max(sta::Sta(dct.module, fresh).critical_delay_ps(),
                                 sta::Sta(idct.module, fresh).critical_delay_ps());
  std::printf("clock period: %.1f ps (fresh critical delay, no guardband)\n", period);

  const image::Image img = image::make_synthetic_image(48, 48);
  image::write_pgm(img, "demo_original.pgm");
  const auto quant = image::QuantTable::jpeg_luma(1.0);

  const auto run = [&](const liberty::Library& lib, const char* file) {
    const sta::Sta sd(dct.module, lib);
    const sta::Sta si(idct.module, lib);
    const auto ad = netlist::compute_delay_annotation(sd);
    const auto ai = netlist::compute_delay_annotation(si);
    image::TimedVectorPort pd(dct.module, lib, ad, period, "x", 12, "y", 12);
    image::TimedVectorPort pi(idct.module, lib, ai, period, "y", 12, "x", 12);
    const auto result = image::run_dct_idct_chain(img, pd, pi, quant);
    image::write_pgm(result.output, file);
    return result.psnr_db;
  };

  std::printf("fresh gate delays:           PSNR %.1f dB -> demo_year0.pgm\n",
              run(fresh, "demo_year0.pgm"));
  std::printf("1 year of worst-case aging:  PSNR %.1f dB -> demo_worst_1y.pgm\n",
              run(aged, "demo_worst_1y.pgm"));
  std::printf(
      "\nWithout a guardband, one year of aging is enough to break the chain —\n"
      "run bench/fig6c_psnr to see how aging-aware synthesis prevents this.\n");
  return 0;
}
