#!/usr/bin/env bash
# Pre-merge entry point: strict build, full test suite, design-rule lint of
# the shipped fixtures, and (when installed) clang-tidy over src/.
#
# Usage: scripts/check.sh [build-dir]     (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (-Werror) =="
cmake -B "$BUILD_DIR" -S . -DRELIAWARE_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== rwlint: example fixtures must be clean =="
RWLINT="$BUILD_DIR/tools/rwlint"
"$RWLINT" --lib examples/fixtures/mini.lib examples/fixtures/clean.v
"$RWLINT" --lib examples/fixtures/merged.lib examples/fixtures/annotated.v

echo "== rwlint: seeded-broken fixture must fail =="
if "$RWLINT" --format json --lib examples/fixtures/mini.lib tests/fixtures/broken.v; then
  echo "error: rwlint accepted tests/fixtures/broken.v" >&2
  exit 1
else
  echo "rwlint rejected broken.v as expected (exit $?)"
fi

echo "== rwstress: clean fixture must be deterministic across thread counts =="
RWSTRESS="$BUILD_DIR/tools/rwstress"
"$RWSTRESS" --threads 1 --lib examples/fixtures/mini.lib examples/fixtures/clean.v > "$BUILD_DIR/rwstress.1t.out"
"$RWSTRESS" --threads "$JOBS" --lib examples/fixtures/mini.lib examples/fixtures/clean.v > "$BUILD_DIR/rwstress.nt.out"
diff "$BUILD_DIR/rwstress.1t.out" "$BUILD_DIR/rwstress.nt.out"
echo "rwstress output bitwise identical at 1 vs $JOBS threads"

echo "== rwactivity: proven toggle bounds must be deterministic across thread counts =="
RWACTIVITY="$BUILD_DIR/tools/rwactivity"
"$RWACTIVITY" --threads 1 --lib examples/fixtures/mini.lib examples/fixtures/clean.v > "$BUILD_DIR/rwactivity.1t.out"
"$RWACTIVITY" --threads "$JOBS" --lib examples/fixtures/mini.lib examples/fixtures/clean.v > "$BUILD_DIR/rwactivity.nt.out"
diff "$BUILD_DIR/rwactivity.1t.out" "$BUILD_DIR/rwactivity.nt.out"
echo "rwactivity output bitwise identical at 1 vs $JOBS threads"

echo "== rwprove: certified bounds must be deterministic across thread counts =="
RWPROVE="$BUILD_DIR/tools/rwprove"
"$RWPROVE" --threads 1 --fresh examples/fixtures/mini.lib \
  --lib examples/fixtures/proven.lib examples/fixtures/clean.v > "$BUILD_DIR/rwprove.1t.out"
"$RWPROVE" --threads "$JOBS" --fresh examples/fixtures/mini.lib \
  --lib examples/fixtures/proven.lib examples/fixtures/clean.v > "$BUILD_DIR/rwprove.nt.out"
diff "$BUILD_DIR/rwprove.1t.out" "$BUILD_DIR/rwprove.nt.out"
echo "rwprove output bitwise identical at 1 vs $JOBS threads"

echo "== perf smoke: flattened characterization must scale across threads =="
# The flattened (scenario × cell × arc × OPC) scheduler plus the
# structure-reusing solver: an N-thread library characterization must beat
# 1 thread by >1.5x. Only demonstrable with >=2 cores; single-core runners
# still exercise the path (and the counters) but skip the ratio gate.
PERF_MICRO="$BUILD_DIR/bench/perf_micro"
"$PERF_MICRO" --json-only --threads "$JOBS" --json-cells=8 \
  --json-out="$BUILD_DIR/perf_smoke.json"
SPEEDUP="$(sed -n 's/.*"char_library".*"speedup": \([0-9.]*\).*/\1/p' \
  "$BUILD_DIR/perf_smoke.json")"
echo "char_library speedup at $JOBS thread(s): ${SPEEDUP}x"
if [[ "$JOBS" -ge 2 ]]; then
  if ! awk -v s="$SPEEDUP" 'BEGIN{exit !(s > 1.5)}'; then
    echo "error: char_library $JOBS-thread speedup ${SPEEDUP}x <= 1.5x" >&2
    exit 1
  fi
else
  echo "single core: thread-speedup ratio gate skipped (needs >= 2 cores)"
fi

echo "== chaos: fixed-seed campaign in the plain tree =="
# Crash-only contract drill: every seeded trial (solver faults, deadlines,
# SIGKILL at stage boundaries) must either complete correctly or fail with
# a structured report and then resume bitwise-identically. The ctest run
# above already executed the chaos label once; this re-runs it explicitly
# so a filtered ctest invocation cannot silently drop the gate.
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure

echo "== serve: crash-tolerant characterization service in the plain tree =="
# rwserved's failure contract: worker leases + SIGKILL redelivery, daemon
# restart with idempotent-id replay, cross-process dedup (exactly one SPICE
# campaign for concurrent duplicates), bounded overload shedding, SIGTERM
# drain — plus the 3-fixed-seed `rwchaos --serve` smoke. Re-run explicitly
# so a filtered ctest invocation cannot drop the gate.
ctest --test-dir "$BUILD_DIR" -L serve --output-on-failure

echo "== prove: certified interval-STA suite in the plain tree =="
# The soundness contract (simulated aged delay inside the proven interval,
# scalar collapse, PV verdicts, fixture exit codes). As with the chaos label,
# re-run explicitly so a filtered ctest invocation cannot drop the gate.
ctest --test-dir "$BUILD_DIR" -L prove --output-on-failure -j "$JOBS"

echo "== activity: switching-activity bounds suite in the plain tree =="
# The toggle-rate soundness contract (simulated rates inside the proven
# density intervals on every paper circuit, zero-width collapse to
# simulator-exact rates, CLI thread invariance + AC verdicts). Re-run
# explicitly so a filtered ctest invocation cannot drop the gate.
ctest --test-dir "$BUILD_DIR" -L activity --output-on-failure -j "$JOBS"

echo "== resilience + stress + chaos suites under ThreadSanitizer =="
# The fault-injection paths (injector arming, in-flight dedup failure
# propagation, manifest writes), the stress analyzer's levelized parallel
# evaluation, and the cancellation polls (token + watchdog + cv waiters)
# are concurrency surfaces; run them in a dedicated TSan tree alongside
# the plain-build run above.
if [[ "${RW_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DRW_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$JOBS" --target \
    resilience_test thread_pool_test stress_test activity_test prove_test \
    cancel_test orchestrator_test flow_resume_test rwchaos rwprove \
    rwactivity perf_smoke_test adaptive_grid_test serve_test
  ctest --test-dir "$TSAN_DIR" -L resilience --output-on-failure -j "$JOBS"
  ctest --test-dir "$TSAN_DIR" -L stress --output-on-failure -j "$JOBS"
  # The density sweep shares the stress analyzer's levelized parallel
  # evaluation (one writer per output net); activity_test also drives the
  # rwactivity CLI's thread-invariance contract under TSan.
  ctest --test-dir "$TSAN_DIR" -L activity --output-on-failure -j "$JOBS"
  ctest --test-dir "$TSAN_DIR" -L prove --output-on-failure -j "$JOBS"
  ctest --test-dir "$TSAN_DIR" -L chaos --output-on-failure
  # The serve label (daemon supervisor, socketpair worker protocol, client
  # retry loop) forks real daemons; TSan watches the pre-fork pool shrink
  # and the supervisor's reap/redeliver bookkeeping.
  ctest --test-dir "$TSAN_DIR" -L serve --output-on-failure
  # The workspace-reuse solve path and the flattened batch scheduler are
  # the new concurrency surfaces: thread-local workspace caches, the shared
  # once-per-arc DC seed, and the batch's per-item error slots.
  ctest --test-dir "$TSAN_DIR" -L perf --output-on-failure -j "$JOBS"
else
  echo "RW_SKIP_TSAN=1; skipping"
fi

echo "== clang-tidy (failing gate; --warnings-as-errors) =="
# A FAILING gate, not advisory: lint_cxx passes --warnings-as-errors=* so any
# clang-tidy finding (config in .clang-tidy) fails this script. Only skipped
# — loudly — when the binary is absent from the machine.
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$BUILD_DIR" --target lint_cxx
else
  echo "WARNING: clang-tidy not installed; gate SKIPPED (it fails the build when present)" >&2
fi

echo "== cppcheck (failing gate; scripts/cppcheck_suppressions.txt) =="
# Same contract: --error-exitcode=1 with the checked-in suppression list;
# new findings must be fixed or explicitly suppressed in that file.
if command -v cppcheck >/dev/null 2>&1; then
  cmake --build "$BUILD_DIR" --target cppcheck_cxx
else
  echo "WARNING: cppcheck not installed; gate SKIPPED (it fails the build when present)" >&2
fi

echo "== all checks passed =="
