/// \file rwclient.cpp
/// `rwclient` — command-line client for rwserved. Sends one request and
/// prints (or writes) the response, with idempotent-id retry across daemon
/// timeouts and restarts: rerunning the same command with the same --id is
/// always safe and never duplicates SPICE work.
///
/// Exit codes:
///   0  ok response
///   2  error response, or no response after every retry
///   64 usage error
///
/// Typical runs:
///   rwclient --socket /tmp/rw.sock ping
///   rwclient --socket /tmp/rw.sock characterize --cell NAND2_X1 --lp 0.4 --ln 0.6 --years 10
///   rwclient --socket /tmp/rw.sock merged --years 10 --corners 0:0,0.5:0.5,1:1 --out merged.lib
///   rwclient --socket /tmp/rw.sock prove --netlist design.v --years 10
///   rwclient --socket /tmp/rw.sock guardband --netlist design.v --lp 0.5 --ln 0.5
///   rwclient --socket /tmp/rw.sock gc --max-age-ms 86400000
///   rwclient --socket /tmp/rw.sock shutdown

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "flow/cancel.hpp"
#include "serve/client.hpp"
#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwclient --socket PATH OP [options]\n"
        "  OP: ping | stats | shutdown | characterize | library | merged\n"
        "      | prove | guardband | gc\n"
        "  --socket PATH     daemon socket ($RW_SERVE_SOCKET)\n"
        "  --id ID           idempotent request id (default: derived, unique)\n"
        "  --cell NAME       cell for `characterize`\n"
        "  --lp X --ln X     lambda duty cycles (default 1.0)\n"
        "  --years Y         lifetime (default 10)\n"
        "  --no-mobility     disable mobility degradation\n"
        "  --corners LP:LN,LP:LN,...   corners for `merged`\n"
        "  --netlist PATH    Verilog netlist for `prove`/`guardband`\n"
        "  --guardband PS    explicit guardband to certify (`prove`; default: derived)\n"
        "  --deadline-ms MS  server-side op deadline (`prove`/`guardband`)\n"
        "  --max-age-ms MS   GC idle-age threshold (`gc`; default: daemon's)\n"
        "  --out PATH        write the library text to PATH (default stdout)\n"
        "  --timeout-ms MS   per-attempt response timeout (default 120000)\n"
        "  --attempts N      send attempts before giving up (default 5)\n"
        "  -h, --help        this message\n"
        "exit codes: 0 ok, 2 error/no response, 64 usage\n";
}

/// A collision-resistant default id: pid + monotonic ns. Good enough for
/// "two rwclient invocations are distinct"; callers that NEED idempotency
/// across invocations pass --id themselves.
std::string default_id() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return "cli-" + std::to_string(::getpid()) + "-" +
         std::to_string(std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

bool parse_corners(const std::string& text, rw::serve::Request& req) {
  for (const std::string& token : rw::util::split(text, ",")) {
    const auto sep = token.find(':');
    if (sep == std::string::npos) return false;
    char* end = nullptr;
    const double lp = std::strtod(token.c_str(), &end);
    const double ln = std::strtod(token.c_str() + sep + 1, &end);
    req.corners.push_back({lp, ln});
  }
  return !req.corners.empty();
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();

  rw::serve::ClientOptions client_options;
  if (const char* env = std::getenv("RW_SERVE_SOCKET"); env != nullptr && *env != '\0') {
    client_options.socket_path = env;
  }
  rw::serve::Request req;
  req.lambda_p = 1.0;
  req.lambda_n = 1.0;
  req.years = 10.0;
  std::string out_path;
  std::string corners_text;
  std::string netlist_path;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwclient: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "-h" || a == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (a == "--socket") {
      if ((v = need_value(i, "--socket")) == nullptr) return kExitUsage;
      client_options.socket_path = v;
    } else if (a == "--id") {
      if ((v = need_value(i, "--id")) == nullptr) return kExitUsage;
      req.id = v;
    } else if (a == "--cell") {
      if ((v = need_value(i, "--cell")) == nullptr) return kExitUsage;
      req.cell = v;
    } else if (a == "--lp") {
      if ((v = need_value(i, "--lp")) == nullptr) return kExitUsage;
      req.lambda_p = std::atof(v);
    } else if (a == "--ln") {
      if ((v = need_value(i, "--ln")) == nullptr) return kExitUsage;
      req.lambda_n = std::atof(v);
    } else if (a == "--years") {
      if ((v = need_value(i, "--years")) == nullptr) return kExitUsage;
      req.years = std::atof(v);
    } else if (a == "--no-mobility") {
      req.include_mobility = false;
    } else if (a == "--corners") {
      if ((v = need_value(i, "--corners")) == nullptr) return kExitUsage;
      corners_text = v;
    } else if (a == "--netlist") {
      if ((v = need_value(i, "--netlist")) == nullptr) return kExitUsage;
      netlist_path = v;
    } else if (a == "--guardband") {
      if ((v = need_value(i, "--guardband")) == nullptr) return kExitUsage;
      req.guardband_ps = std::atof(v);
    } else if (a == "--deadline-ms") {
      if ((v = need_value(i, "--deadline-ms")) == nullptr) return kExitUsage;
      req.deadline_ms = std::atof(v);
    } else if (a == "--max-age-ms") {
      if ((v = need_value(i, "--max-age-ms")) == nullptr) return kExitUsage;
      req.max_age_ms = std::atof(v);
    } else if (a == "--out") {
      if ((v = need_value(i, "--out")) == nullptr) return kExitUsage;
      out_path = v;
    } else if (a == "--timeout-ms") {
      if ((v = need_value(i, "--timeout-ms")) == nullptr) return kExitUsage;
      client_options.timeout_ms = std::atoi(v);
    } else if (a == "--attempts") {
      if ((v = need_value(i, "--attempts")) == nullptr) return kExitUsage;
      client_options.max_attempts = std::atoi(v);
    } else if (!a.empty() && a[0] != '-' && req.op.empty()) {
      req.op = a;
    } else {
      std::cerr << "rwclient: unknown argument " << a << "\n";
      print_usage(std::cerr);
      return kExitUsage;
    }
  }

  if (client_options.socket_path.empty() || req.op.empty()) {
    std::cerr << "rwclient: --socket and an OP are required\n";
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (req.op == "characterize" && req.cell.empty()) {
    std::cerr << "rwclient: characterize needs --cell\n";
    return kExitUsage;
  }
  if (req.op == "merged" && !parse_corners(corners_text, req)) {
    std::cerr << "rwclient: merged needs --corners LP:LN,...\n";
    return kExitUsage;
  }
  if (req.op == "prove" || req.op == "guardband") {
    if (netlist_path.empty()) {
      std::cerr << "rwclient: " << req.op << " needs --netlist PATH\n";
      return kExitUsage;
    }
    std::ifstream in(netlist_path, std::ios::binary);
    if (!in) {
      std::cerr << "rwclient: cannot read " << netlist_path << "\n";
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    req.netlist = os.str();
  }
  if (req.id.empty()) req.id = default_id();

  try {
    rw::serve::ServeClient client(client_options);
    const rw::serve::Response resp = client.request(req);
    if (resp.status != "ok") {
      std::cerr << "rwclient: " << resp.status
                << (resp.error.empty() ? "" : ": " + resp.error) << "\n";
      return 2;
    }
    if (!resp.stats.empty()) {
      for (const auto& [name, value] : resp.stats) {
        std::cout << name << " = " << rw::serve::format_double(value) << "\n";
      }
    }
    if (!resp.result.empty()) std::cout << resp.result << "\n";
    if (!resp.library.empty()) {
      if (out_path.empty()) {
        std::cout << resp.library;
      } else {
        rw::util::write_file_atomic(out_path, resp.library);
        std::cerr << "rwclient: wrote " << out_path << "\n";
      }
    } else if (resp.stats.empty() && resp.result.empty()) {
      std::cout << "ok\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rwclient: " << e.what() << "\n";
    return 2;
  }
}
