/// \file rwactivity.cpp
/// `rwactivity` — simulation-free switching-activity analysis over a
/// gate-level netlist: proves per-net transition-density intervals
/// (toggles/cycle) that hold for *every* workload admitted by the declared
/// input model, derives per-instance toggle / switched-capacitance / HCI
/// activity bounds, then cross-checks everything with the AC lint rules
/// (AC001 measured-vs-bound oracle, AC002 proven-quiet nets, AC003
/// unavoidable hotspots).
///
/// Exit codes match rwlint:
///   0  clean, or info-level findings only
///   1  warnings
///   2  errors (including unreadable inputs / structurally broken netlists)
///   64 usage error (bad flags), as in sysexits.h
///
/// Typical runs:
///   rwactivity --lib fresh.lib design.v
///   rwactivity --lib fresh.lib --input start=0.4:0.6 --density start=0.2:0.4
///              --threshold 0.9 --format json design.v   (one command line)
///
/// Output is deterministic and bitwise identical for any --threads value.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "flow/cancel.hpp"
#include "liberty/library.hpp"
#include "liberty/parser.hpp"
#include "lint/linter.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "stress/activity_bounds.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwactivity [options] netlist.v\n"
        "  --lib FILE         Liberty library to resolve cells against (repeatable)\n"
        "  --input NET=L:H    probability interval for one primary input (repeatable)\n"
        "  --density NET=L:H  toggles/cycle interval for one primary input (repeatable)\n"
        "  --default L:H      probability interval for undeclared inputs (default 0:1)\n"
        "  --default-density L:H  toggles/cycle for undeclared inputs (default: derived)\n"
        "  --clock T          transitions/cycle on the clock net (default 2)\n"
        "  --threshold X      AC003 hotspot threshold, toggles/cycle (default 1)\n"
        "  --iterations N     cap on sequential fixed-point rounds (default 64)\n"
        "  --format FMT       output format: text (default) or json\n"
        "  --threads N        worker threads for the levelized evaluation\n"
        "  -h, --help         this message\n"
        "exit codes: 0 clean/info, 1 warnings, 2 errors, 64 usage error\n";
}

struct Args {
  std::vector<std::string> lib_paths;
  rw::stress::ActivityOptions options;
  double threshold = 1.0;
  std::string format = "text";
  std::string netlist;
  bool help = false;
};

bool parse_interval(const std::string& text, rw::stress::Interval& out) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  try {
    out.lo = std::stod(text.substr(0, colon));
    out.hi = std::stod(text.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return out.lo <= out.hi && out.lo >= 0.0 && out.hi <= 1.0;
}

bool parse_args(int argc, char** argv, Args& args) {
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwactivity: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  const auto parse_net_interval = [&](const char* v, const char* flag,
                                      rw::stress::Interval& interval, std::string& net) {
    const std::string spec = v;
    const auto eq = spec.find('=');
    if (eq == std::string::npos || !parse_interval(spec.substr(eq + 1), interval)) {
      std::cerr << "rwactivity: " << flag << " wants NET=LO:HI with 0 <= LO <= HI <= 1\n";
      return false;
    }
    net = spec.substr(0, eq);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--lib") {
      const char* v = need_value(i, "--lib");
      if (v == nullptr) return false;
      args.lib_paths.emplace_back(v);
    } else if (a == "--input") {
      const char* v = need_value(i, "--input");
      if (v == nullptr) return false;
      rw::stress::Interval interval;
      std::string net;
      if (!parse_net_interval(v, "--input", interval, net)) return false;
      args.options.probability.input_intervals[net] = interval;
    } else if (a == "--density") {
      const char* v = need_value(i, "--density");
      if (v == nullptr) return false;
      rw::stress::Interval interval;
      std::string net;
      if (!parse_net_interval(v, "--density", interval, net)) return false;
      args.options.input_densities[net] = interval;
    } else if (a == "--default") {
      const char* v = need_value(i, "--default");
      if (v == nullptr) return false;
      if (!parse_interval(v, args.options.probability.default_input)) {
        std::cerr << "rwactivity: --default wants LO:HI with 0 <= LO <= HI <= 1\n";
        return false;
      }
    } else if (a == "--default-density") {
      const char* v = need_value(i, "--default-density");
      if (v == nullptr) return false;
      rw::stress::Interval interval;
      if (!parse_interval(v, interval)) {
        std::cerr << "rwactivity: --default-density wants LO:HI with 0 <= LO <= HI <= 1\n";
        return false;
      }
      args.options.default_input_density = interval;
    } else if (a == "--clock") {
      const char* v = need_value(i, "--clock");
      if (v == nullptr) return false;
      try {
        args.options.clock_transitions = std::stod(v);
      } catch (const std::exception&) {
        args.options.clock_transitions = -1.0;
      }
      if (args.options.clock_transitions < 0.0) {
        std::cerr << "rwactivity: --clock wants transitions/cycle >= 0\n";
        return false;
      }
    } else if (a == "--threshold") {
      const char* v = need_value(i, "--threshold");
      if (v == nullptr) return false;
      try {
        args.threshold = std::stod(v);
      } catch (const std::exception&) {
        args.threshold = -1.0;
      }
      if (args.threshold < 0.0) {
        std::cerr << "rwactivity: --threshold wants toggles/cycle >= 0\n";
        return false;
      }
    } else if (a == "--iterations") {
      const char* v = need_value(i, "--iterations");
      if (v == nullptr) return false;
      args.options.probability.max_iterations = std::atoi(v);
      if (args.options.probability.max_iterations < 1) {
        std::cerr << "rwactivity: --iterations wants a positive count\n";
        return false;
      }
    } else if (a == "--format") {
      const char* v = need_value(i, "--format");
      if (v == nullptr) return false;
      args.format = v;
    } else if (a == "-h" || a == "--help") {
      args.help = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "rwactivity: unknown flag " << a << "\n";
      return false;
    } else if (args.netlist.empty()) {
      args.netlist = a;
    } else {
      std::cerr << "rwactivity: exactly one netlist per run\n";
      return false;
    }
  }
  if (args.format != "text" && args.format != "json") {
    std::cerr << "rwactivity: --format must be text or json\n";
    return false;
  }
  if (!args.help && (args.netlist.empty() || args.lib_paths.empty())) {
    print_usage(std::cerr);
    return false;
  }
  return true;
}

void append_interval_json(std::string& out, double lo, double hi) {
  out += "{\"lo\":" + rw::util::format_fixed(lo, 6) +
         ",\"hi\":" + rw::util::format_fixed(hi, 6) + "}";
}

std::string interval_str(double lo, double hi) {
  return "[" + rw::util::format_fixed(lo, 6) + ", " + rw::util::format_fixed(hi, 6) + "]";
}

void print_json(const rw::netlist::Module& module, const rw::stress::ActivityReport& report,
                const std::vector<rw::lint::Diagnostic>& diagnostics) {
  using rw::util::append_json_string;
  std::string out = "{\"module\":";
  append_json_string(out, module.name());
  out += ",\"iterations\":" + std::to_string(report.probability.iterations);
  out += std::string(",\"converged\":") + (report.probability.converged ? "true" : "false");
  out += ",\"widened_nets\":" + std::to_string(report.widened_density_count());
  out += ",\"quiet_nets\":" + std::to_string(report.quiet_driven_nets);
  out += ",\"nets\":[";
  for (std::size_t net = 0; net < report.density.size(); ++net) {
    if (net != 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, module.net_name(static_cast<rw::netlist::NetId>(net)));
    out += ",\"probability\":";
    append_interval_json(out, report.probability.net[net].lo, report.probability.net[net].hi);
    out += ",\"density\":";
    append_interval_json(out, report.density[net].lo, report.density[net].hi);
    out += std::string(",\"widened\":") + (report.density_widened[net] != 0 ? "true" : "false");
    out += std::string(",\"clock_fed\":") + (report.clock_fed[net] != 0 ? "true" : "false");
    out += '}';
  }
  out += "],\"instances\":[";
  for (std::size_t i = 0; i < report.instances.size(); ++i) {
    const auto& inst = report.instances[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, module.instances()[i].name);
    out += ",\"cell\":";
    append_json_string(out, module.instances()[i].cell);
    out += ",\"output_toggles\":";
    append_interval_json(out, inst.output_toggles.lo, inst.output_toggles.hi);
    out += ",\"load_ff\":" + rw::util::format_fixed(inst.load_ff, 6);
    out += ",\"switch_cap_ff\":";
    append_interval_json(out, inst.switch_cap_ff.lo, inst.switch_cap_ff.hi);
    out += ",\"hci\":";
    append_interval_json(out, inst.hci.lo, inst.hci.hi);
    out += std::string(",\"hci_from_stacks\":") + (inst.hci_from_stacks ? "true" : "false");
    out += std::string(",\"widened\":") + (inst.widened ? "true" : "false");
    out += '}';
  }
  out += "],\"lint\":" + rw::lint::to_json(diagnostics) + "}";
  std::cout << out << "\n";
}

void print_text(const rw::netlist::Module& module, const rw::stress::ActivityReport& report,
                const std::vector<rw::lint::Diagnostic>& diagnostics) {
  std::cout << "module " << module.name() << ": " << module.net_count() << " nets, "
            << module.instances().size() << " instances\n"
            << "fixed point: " << report.probability.iterations << " iteration(s), "
            << (report.probability.converged ? "converged" : "NOT converged") << "; "
            << report.widened_density_count() << " widened net(s), "
            << report.quiet_driven_nets << " proven-quiet driven net(s)\n";
  for (std::size_t net = 0; net < report.density.size(); ++net) {
    std::cout << "net " << module.net_name(static_cast<rw::netlist::NetId>(net))
              << ": prob " << report.probability.net[net].str() << ", density "
              << report.density[net].str()
              << (report.density_widened[net] != 0 ? " widened" : "")
              << (report.clock_fed[net] != 0 ? " clock-fed" : "") << "\n";
  }
  for (std::size_t i = 0; i < report.instances.size(); ++i) {
    const auto& inst = module.instances()[i];
    const auto& a = report.instances[i];
    std::cout << "inst " << inst.name << " (" << inst.cell << "): toggles "
              << a.output_toggles.str() << ", switch_cap_ff "
              << interval_str(a.switch_cap_ff.lo, a.switch_cap_ff.hi) << ", hci "
              << interval_str(a.hci.lo, a.hci.hi)
              << (a.hci_from_stacks ? "" : " (coarse)") << (a.widened ? " widened" : "")
              << "\n";
  }
  std::cout << rw::lint::format_report(diagnostics);
  std::cout << "rwactivity: " << rw::lint::count(diagnostics, rw::lint::Severity::kError)
            << " error(s), " << rw::lint::count(diagnostics, rw::lint::Severity::kWarning)
            << " warning(s), " << rw::lint::count(diagnostics, rw::lint::Severity::kInfo)
            << " info\n";
}

rw::lint::Diagnostic io_error(const std::string& path, const std::string& what) {
  return rw::lint::Diagnostic{"IO001", rw::lint::Severity::kError, path, what,
                              "fix the file or the flag pointing at it"};
}

int exit_code(const std::vector<rw::lint::Diagnostic>& diagnostics) {
  switch (rw::lint::worst_severity(diagnostics)) {
    case rw::lint::Severity::kError:
      return 2;
    case rw::lint::Severity::kWarning:
      return 1;
    case rw::lint::Severity::kInfo:
      return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();
  rw::util::consume_thread_flag(argc, argv);
  Args args;
  if (!parse_args(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_usage(std::cout);
    return 0;
  }

  std::vector<rw::lint::Diagnostic> report;
  rw::liberty::Library pool("rwactivity_pool");
  for (const auto& path : args.lib_paths) {
    try {
      const rw::liberty::Library lib = rw::liberty::parse_library_file(path);
      for (const auto& cell : lib.cells()) {
        if (pool.find(cell.name) == nullptr) pool.add_cell(cell);
      }
    } catch (const std::exception& e) {
      report.push_back(io_error(path, e.what()));
    }
  }
  if (!report.empty()) {
    std::cout << rw::lint::format_report(report);
    return exit_code(report);
  }

  rw::netlist::Module module("empty");
  try {
    module = rw::netlist::parse_verilog_file(args.netlist, pool, {.lenient = true});
  } catch (const std::exception& e) {
    report.push_back(io_error(args.netlist, e.what()));
    std::cout << rw::lint::format_report(report);
    return exit_code(report);
  }

  // Full netlist lint (structural + SP + AC rules) with the declared input
  // model; the analysis below needs a structurally sound module, so errors
  // end the run with the diagnostics as the report.
  rw::lint::LintSubject subject;
  subject.module = &module;
  subject.library = &pool;
  subject.stress = &args.options.probability;
  subject.activity = &args.options;
  subject.activity_hotspot_threshold = args.threshold;
  const auto diagnostics = rw::lint::Linter::netlist_linter().run(subject);

  rw::stress::ActivityReport activity;
  try {
    activity = rw::stress::analyze_activity(module, pool, args.options);
  } catch (const std::exception& e) {
    std::cout << rw::lint::format_report(diagnostics);
    std::cerr << "rwactivity: " << e.what() << "\n";
    return 2;
  }

  if (args.format == "json") {
    print_json(module, activity, diagnostics);
  } else {
    print_text(module, activity, diagnostics);
  }
  return exit_code(diagnostics);
}
