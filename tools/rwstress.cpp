/// \file rwstress.cpp
/// `rwstress` — simulation-free duty-cycle analysis over a gate-level
/// netlist: proves per-net signal-probability intervals and per-instance
/// (λp, λn) bounds that hold for *every* workload admitted by the declared
/// input model, then cross-checks them with the SP lint rules (SP001
/// annotation-vs-bound, SP002 proven-constant nets, SP003 vacuous bounds).
///
/// Exit codes match rwlint:
///   0  clean, or info-level findings only
///   1  warnings
///   2  errors (including unreadable inputs / structurally broken netlists)
///   64 usage error (bad flags), as in sysexits.h
///
/// Typical runs:
///   rwstress --lib fresh.lib design.v
///   rwstress --lib merged.lib --input start=0.0:0.2 --format json annotated.v
///
/// Output is deterministic and bitwise identical for any --threads value.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "flow/cancel.hpp"
#include "liberty/library.hpp"
#include "liberty/parser.hpp"
#include "lint/linter.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "stress/analyzer.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwstress [options] netlist.v\n"
        "  --lib FILE        Liberty library to resolve cells against (repeatable)\n"
        "  --input NET=L:H   probability interval for one primary input (repeatable)\n"
        "  --default L:H     interval for undeclared primary inputs (default 0:1)\n"
        "  --clock P         duty cycle assumed on clock pins (default 0.5)\n"
        "  --iterations N    cap on sequential fixed-point rounds (default 64)\n"
        "  --format FMT      output format: text (default) or json\n"
        "  --threads N       worker threads for the levelized evaluation\n"
        "  -h, --help        this message\n"
        "exit codes: 0 clean/info, 1 warnings, 2 errors, 64 usage error\n";
}

struct Args {
  std::vector<std::string> lib_paths;
  rw::stress::AnalyzeOptions options;
  std::string format = "text";
  std::string netlist;
  bool help = false;
};

bool parse_interval(const std::string& text, rw::stress::Interval& out) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  try {
    out.lo = std::stod(text.substr(0, colon));
    out.hi = std::stod(text.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return out.lo <= out.hi && out.lo >= 0.0 && out.hi <= 1.0;
}

bool parse_args(int argc, char** argv, Args& args) {
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwstress: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--lib") {
      const char* v = need_value(i, "--lib");
      if (v == nullptr) return false;
      args.lib_paths.emplace_back(v);
    } else if (a == "--input") {
      const char* v = need_value(i, "--input");
      if (v == nullptr) return false;
      const std::string spec = v;
      const auto eq = spec.find('=');
      rw::stress::Interval interval;
      if (eq == std::string::npos || !parse_interval(spec.substr(eq + 1), interval)) {
        std::cerr << "rwstress: --input wants NET=LO:HI with 0 <= LO <= HI <= 1\n";
        return false;
      }
      args.options.input_intervals[spec.substr(0, eq)] = interval;
    } else if (a == "--default") {
      const char* v = need_value(i, "--default");
      if (v == nullptr) return false;
      if (!parse_interval(v, args.options.default_input)) {
        std::cerr << "rwstress: --default wants LO:HI with 0 <= LO <= HI <= 1\n";
        return false;
      }
    } else if (a == "--clock") {
      const char* v = need_value(i, "--clock");
      if (v == nullptr) return false;
      try {
        args.options.clock_probability = std::stod(v);
      } catch (const std::exception&) {
        args.options.clock_probability = -1.0;
      }
      if (args.options.clock_probability < 0.0 || args.options.clock_probability > 1.0) {
        std::cerr << "rwstress: --clock wants a probability in [0,1]\n";
        return false;
      }
    } else if (a == "--iterations") {
      const char* v = need_value(i, "--iterations");
      if (v == nullptr) return false;
      args.options.max_iterations = std::atoi(v);
      if (args.options.max_iterations < 1) {
        std::cerr << "rwstress: --iterations wants a positive count\n";
        return false;
      }
    } else if (a == "--format") {
      const char* v = need_value(i, "--format");
      if (v == nullptr) return false;
      args.format = v;
    } else if (a == "-h" || a == "--help") {
      args.help = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "rwstress: unknown flag " << a << "\n";
      return false;
    } else if (args.netlist.empty()) {
      args.netlist = a;
    } else {
      std::cerr << "rwstress: exactly one netlist per run\n";
      return false;
    }
  }
  if (args.format != "text" && args.format != "json") {
    std::cerr << "rwstress: --format must be text or json\n";
    return false;
  }
  if (!args.help && (args.netlist.empty() || args.lib_paths.empty())) {
    print_usage(std::cerr);
    return false;
  }
  return true;
}

void append_interval_json(std::string& out, const rw::stress::Interval& v) {
  out += "{\"lo\":" + rw::util::format_fixed(v.lo, 6) +
         ",\"hi\":" + rw::util::format_fixed(v.hi, 6) + "}";
}

void print_json(const rw::netlist::Module& module, const rw::stress::StressReport& report,
                const std::vector<rw::lint::Diagnostic>& diagnostics) {
  using rw::util::append_json_string;
  std::string out = "{\"module\":";
  append_json_string(out, module.name());
  out += ",\"iterations\":" + std::to_string(report.iterations);
  out += std::string(",\"converged\":") + (report.converged ? "true" : "false");
  out += ",\"nets\":[";
  for (std::size_t net = 0; net < report.net.size(); ++net) {
    if (net != 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, module.net_name(static_cast<rw::netlist::NetId>(net)));
    out += ",\"interval\":";
    append_interval_json(out, report.net[net]);
    out += std::string(",\"widened\":") + (report.net_widened[net] != 0 ? "true" : "false");
    out += '}';
  }
  out += "],\"instances\":[";
  for (std::size_t i = 0; i < report.instances.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, module.instances()[i].name);
    out += ",\"cell\":";
    append_json_string(out, module.instances()[i].cell);
    out += ",\"lambda_p\":";
    append_interval_json(out, report.instances[i].lambda_p);
    out += ",\"lambda_n\":";
    append_interval_json(out, report.instances[i].lambda_n);
    out += std::string(",\"widened\":") + (report.instances[i].widened ? "true" : "false");
    out += '}';
  }
  out += "],\"lint\":" + rw::lint::to_json(diagnostics) + "}";
  std::cout << out << "\n";
}

void print_text(const rw::netlist::Module& module, const rw::stress::StressReport& report,
                const std::vector<rw::lint::Diagnostic>& diagnostics) {
  std::cout << "module " << module.name() << ": " << module.net_count() << " nets, "
            << module.instances().size() << " instances\n"
            << "fixed point: " << report.iterations << " iteration(s), "
            << (report.converged ? "converged" : "NOT converged") << "; "
            << report.widened_net_count() << " widened net(s), " << report.constant_net_count()
            << " constant net(s)\n";
  for (std::size_t net = 0; net < report.net.size(); ++net) {
    std::cout << "net " << module.net_name(static_cast<rw::netlist::NetId>(net)) << ": "
              << report.net[net].str() << (report.net_widened[net] != 0 ? " widened" : "")
              << "\n";
  }
  for (std::size_t i = 0; i < report.instances.size(); ++i) {
    const auto& inst = module.instances()[i];
    const auto& b = report.instances[i];
    std::cout << "inst " << inst.name << " (" << inst.cell << "): lambda_p "
              << b.lambda_p.str() << ", lambda_n " << b.lambda_n.str()
              << (b.widened ? " widened" : "") << "\n";
  }
  std::cout << rw::lint::format_report(diagnostics);
  std::cout << "rwstress: " << rw::lint::count(diagnostics, rw::lint::Severity::kError)
            << " error(s), " << rw::lint::count(diagnostics, rw::lint::Severity::kWarning)
            << " warning(s), " << rw::lint::count(diagnostics, rw::lint::Severity::kInfo)
            << " info\n";
}

rw::lint::Diagnostic io_error(const std::string& path, const std::string& what) {
  return rw::lint::Diagnostic{"IO001", rw::lint::Severity::kError, path, what,
                              "fix the file or the flag pointing at it"};
}

int exit_code(const std::vector<rw::lint::Diagnostic>& diagnostics) {
  switch (rw::lint::worst_severity(diagnostics)) {
    case rw::lint::Severity::kError:
      return 2;
    case rw::lint::Severity::kWarning:
      return 1;
    case rw::lint::Severity::kInfo:
      return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();
  rw::util::consume_thread_flag(argc, argv);
  Args args;
  if (!parse_args(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_usage(std::cout);
    return 0;
  }

  std::vector<rw::lint::Diagnostic> report;
  rw::liberty::Library pool("rwstress_pool");
  for (const auto& path : args.lib_paths) {
    try {
      const rw::liberty::Library lib = rw::liberty::parse_library_file(path);
      for (const auto& cell : lib.cells()) {
        if (pool.find(cell.name) == nullptr) pool.add_cell(cell);
      }
    } catch (const std::exception& e) {
      report.push_back(io_error(path, e.what()));
    }
  }
  if (!report.empty()) {
    std::cout << rw::lint::format_report(report);
    return exit_code(report);
  }

  rw::netlist::Module module("empty");
  try {
    module = rw::netlist::parse_verilog_file(args.netlist, pool, {.lenient = true});
  } catch (const std::exception& e) {
    report.push_back(io_error(args.netlist, e.what()));
    std::cout << rw::lint::format_report(report);
    return exit_code(report);
  }

  // Full netlist lint (structural + annotation + SP cross-checks) with the
  // declared input model; the analysis below needs a structurally sound
  // module, so errors end the run with the diagnostics as the report.
  rw::lint::LintSubject subject;
  subject.module = &module;
  subject.library = &pool;
  subject.stress = &args.options;
  const auto diagnostics = rw::lint::Linter::netlist_linter().run(subject);

  rw::stress::StressReport stress;
  try {
    stress = rw::stress::analyze(module, pool, args.options);
  } catch (const std::exception& e) {
    std::cout << rw::lint::format_report(diagnostics);
    std::cerr << "rwstress: " << e.what() << "\n";
    return 2;
  }

  if (args.format == "json") {
    print_json(module, stress, diagnostics);
  } else {
    print_text(module, stress, diagnostics);
  }
  return exit_code(diagnostics);
}
