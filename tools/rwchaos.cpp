/// \file rwchaos.cpp
/// `rwchaos` — seeded chaos campaign over the orchestrated guardband flow.
/// Every trial injects one seeded failure (solver convergence fault, NaN
/// residual, stall against the solve watchdog, wall-clock deadline, or a
/// SIGKILL at a checkpoint boundary) and asserts the crash-only contract:
/// the run completes correctly, or it fails with a structured run report and
/// then completes bitwise-correctly via resume.
///
/// Exit codes:
///   0  every trial ended in {ok, failed_then_resumed}
///   2  at least one contract violation (wrong_result/no_report/resume_failed)
///   64 usage error (bad flags), as in sysexits.h
///
/// With --serve the campaign targets the characterization service instead:
/// every trial forks a real rwserved daemon over a private cache, injects a
/// seeded fault (worker SIGKILL, task stall past its lease, daemon SIGKILL +
/// restart, client timeout), and asserts the served library text is bitwise
/// identical to a direct in-process LibraryFactory run.
///
/// With --serve-fleet every trial runs TWO daemons over one shared cache and
/// injects a fleet fault (daemon SIGKILL mid-load with peer adoption, cache
/// GC concurrent with characterization, work stealing from a wedged peer).
///
/// Typical runs:
///   rwchaos --seeds 25 --dir /tmp/chaos
///   rwchaos --serve --seeds 20 --dir /tmp/chaos_serve
///   rwchaos --serve-fleet --seeds 20 --dir /tmp/chaos_fleet
///   RW_CHAOS_SEED=1337 rwchaos --seeds 5 --json-out BENCH_chaos.json

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "flow/cancel.hpp"
#include "flow/chaos.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwchaos [options]\n"
        "  --seeds N         number of seeded trials (default 25)\n"
        "  --seed S          base seed (default 1; $RW_CHAOS_SEED overrides)\n"
        "  --dir PATH        campaign work root (default ./chaos_campaign)\n"
        "  --serve           run the rwserved service campaign instead\n"
        "  --serve-fleet     run the two-daemon shared-cache fleet campaign\n"
        "  --json-out PATH   write the machine-readable campaign summary\n"
        "  -h, --help        this message\n"
        "exit codes: 0 contract held for every trial, 2 violations, 64 usage\n";
}

struct Args {
  int seeds = 25;
  std::uint64_t base_seed = 1;
  std::string dir = "chaos_campaign";
  std::string json_out;
  bool serve = false;
  bool fleet = false;
  bool help = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  if (const char* env = std::getenv("RW_CHAOS_SEED"); env != nullptr && *env != '\0') {
    args.base_seed = std::strtoull(env, nullptr, 10);
  }
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwchaos: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      args.help = true;
    } else if (a == "--seeds") {
      const char* v = need_value(i, "--seeds");
      if (v == nullptr) return false;
      args.seeds = std::atoi(v);
      if (args.seeds <= 0) {
        std::cerr << "rwchaos: --seeds must be positive\n";
        return false;
      }
    } else if (a == "--seed") {
      const char* v = need_value(i, "--seed");
      if (v == nullptr) return false;
      args.base_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--dir") {
      const char* v = need_value(i, "--dir");
      if (v == nullptr) return false;
      args.dir = v;
    } else if (a == "--serve") {
      args.serve = true;
    } else if (a == "--serve-fleet") {
      args.fleet = true;
    } else if (a == "--json-out") {
      const char* v = need_value(i, "--json-out");
      if (v == nullptr) return false;
      args.json_out = v;
    } else {
      std::cerr << "rwchaos: unknown argument " << a << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();
  Args args;
  if (!parse_args(argc, argv, args)) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (args.help) {
    print_usage(std::cout);
    return 0;
  }

  const rw::flow::ChaosCampaignResult campaign =
      args.fleet ? rw::flow::run_serve_fleet_campaign(args.base_seed, args.seeds, args.dir)
      : args.serve ? rw::flow::run_serve_chaos_campaign(args.base_seed, args.seeds, args.dir)
                   : rw::flow::run_chaos_campaign(args.base_seed, args.seeds, args.dir);

  for (const rw::flow::ChaosTrialResult& t : campaign.trials) {
    std::cout << "seed " << t.seed << "  " << t.kind << " -> " << t.outcome;
    if (!t.detail.empty()) std::cout << "  (" << t.detail << ")";
    std::cout << "\n";
  }
  std::cout << "outcomes:";
  for (const auto& [outcome, count] : campaign.histogram) {
    std::cout << "  " << outcome << "=" << count;
  }
  std::cout << "\n"
            << (campaign.all_good ? "chaos contract held for every trial\n"
                                  : "CHAOS CONTRACT VIOLATED\n");

  if (!args.json_out.empty()) {
    rw::util::write_file_atomic(
        args.json_out,
        rw::flow::campaign_json(campaign, args.base_seed,
                                args.fleet   ? "serve_fleet_campaign"
                                : args.serve ? "serve_chaos_campaign"
                                             : "chaos_campaign"));
    std::cout << "wrote " << args.json_out << "\n";
  }
  return campaign.all_good ? 0 : 2;
}
