/// \file rwprove.cpp
/// `rwprove` — certified interval STA over a gate-level netlist: proves
/// sound `[lo, hi]` bounds on the aged critical-path delay that hold for
/// *every* workload admitted by the declared input model, by bracketing each
/// instance's proven (λp, λn) interval with characterized λ-lattice corner
/// cells (--lib) and propagating arrival/slew intervals through the timing
/// graph. A candidate guardband is then certified or refuted against the
/// proven upper bound (PV001); overly wide proofs are ranked by per-edge
/// blame (PV002); instances with no in-bounds corners make the proof
/// vacuous (PV003).
///
/// Exit codes match rwlint:
///   0  clean, or info-level findings only
///   1  warnings
///   2  errors (unsound guardband, vacuous proof, unreadable inputs)
///   64 usage error (bad flags), as in sysexits.h
///
/// Typical runs:
///   rwprove --fresh fresh.lib --lib corners.lib design.v
///   rwprove --fresh fresh.lib --lib corners.lib --guardband 25 design.v
///   rwprove --fresh fresh.lib --lib corners.lib --input start=0.0:0.2 design.v
///
/// Output is deterministic and bitwise identical for any --threads value.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "charlib/interval_query.hpp"
#include "flow/cancel.hpp"
#include "liberty/library.hpp"
#include "liberty/parser.hpp"
#include "lint/linter.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "sta/analysis.hpp"
#include "sta/interval_sta.hpp"
#include "stress/analyzer.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwprove [options] netlist.v\n"
        "  --fresh FILE      fresh base library (resolves cells; fresh critical path)\n"
        "  --lib FILE        merged library of λ-indexed corner cells (repeatable)\n"
        "  --input NET=L:H   probability interval for one primary input (repeatable)\n"
        "  --default L:H     interval for undeclared primary inputs (default 0:1)\n"
        "  --clock P         duty cycle assumed on clock pins (default 0.5)\n"
        "  --iterations N    cap on sequential fixed-point rounds (default 64)\n"
        "  --step S          λ lattice quantization step (default 0.1)\n"
        "  --guardband PS    candidate guardband to certify against the proven bound\n"
        "  --budget PS       slack budget: warn when the proven interval is wider\n"
        "  --format FMT      output format: text (default) or json\n"
        "  --threads N       worker threads for parallel rule execution\n"
        "  -h, --help        this message\n"
        "exit codes: 0 certified/clean, 1 warnings, 2 errors/refuted, 64 usage error\n";
}

struct Args {
  std::string fresh_path;
  std::vector<std::string> lib_paths;
  rw::stress::AnalyzeOptions stress;
  double lambda_step = 0.1;
  double guardband_ps = -1.0;
  double budget_ps = -1.0;
  std::string format = "text";
  std::string netlist;
  bool help = false;
};

bool parse_interval(const std::string& text, rw::stress::Interval& out) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  try {
    out.lo = std::stod(text.substr(0, colon));
    out.hi = std::stod(text.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return out.lo <= out.hi && out.lo >= 0.0 && out.hi <= 1.0;
}

bool parse_double(const char* text, double& out) {
  try {
    out = std::stod(text);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool parse_args(int argc, char** argv, Args& args) {
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwprove: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fresh") {
      const char* v = need_value(i, "--fresh");
      if (v == nullptr) return false;
      args.fresh_path = v;
    } else if (a == "--lib") {
      const char* v = need_value(i, "--lib");
      if (v == nullptr) return false;
      args.lib_paths.emplace_back(v);
    } else if (a == "--input") {
      const char* v = need_value(i, "--input");
      if (v == nullptr) return false;
      const std::string spec = v;
      const auto eq = spec.find('=');
      rw::stress::Interval interval;
      if (eq == std::string::npos || !parse_interval(spec.substr(eq + 1), interval)) {
        std::cerr << "rwprove: --input wants NET=LO:HI with 0 <= LO <= HI <= 1\n";
        return false;
      }
      args.stress.input_intervals[spec.substr(0, eq)] = interval;
    } else if (a == "--default") {
      const char* v = need_value(i, "--default");
      if (v == nullptr) return false;
      if (!parse_interval(v, args.stress.default_input)) {
        std::cerr << "rwprove: --default wants LO:HI with 0 <= LO <= HI <= 1\n";
        return false;
      }
    } else if (a == "--clock") {
      const char* v = need_value(i, "--clock");
      if (v == nullptr) return false;
      if (!parse_double(v, args.stress.clock_probability) ||
          args.stress.clock_probability < 0.0 || args.stress.clock_probability > 1.0) {
        std::cerr << "rwprove: --clock wants a probability in [0,1]\n";
        return false;
      }
    } else if (a == "--iterations") {
      const char* v = need_value(i, "--iterations");
      if (v == nullptr) return false;
      args.stress.max_iterations = std::atoi(v);
      if (args.stress.max_iterations < 1) {
        std::cerr << "rwprove: --iterations wants a positive count\n";
        return false;
      }
    } else if (a == "--step") {
      const char* v = need_value(i, "--step");
      if (v == nullptr) return false;
      if (!parse_double(v, args.lambda_step) || args.lambda_step <= 0.0 ||
          args.lambda_step > 1.0) {
        std::cerr << "rwprove: --step wants a value in (0,1]\n";
        return false;
      }
    } else if (a == "--guardband") {
      const char* v = need_value(i, "--guardband");
      if (v == nullptr) return false;
      if (!parse_double(v, args.guardband_ps) || args.guardband_ps < 0.0) {
        std::cerr << "rwprove: --guardband wants a non-negative value in ps\n";
        return false;
      }
    } else if (a == "--budget") {
      const char* v = need_value(i, "--budget");
      if (v == nullptr) return false;
      if (!parse_double(v, args.budget_ps) || args.budget_ps < 0.0) {
        std::cerr << "rwprove: --budget wants a non-negative value in ps\n";
        return false;
      }
    } else if (a == "--format") {
      const char* v = need_value(i, "--format");
      if (v == nullptr) return false;
      args.format = v;
    } else if (a == "-h" || a == "--help") {
      args.help = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "rwprove: unknown flag " << a << "\n";
      return false;
    } else if (args.netlist.empty()) {
      args.netlist = a;
    } else {
      std::cerr << "rwprove: exactly one netlist per run\n";
      return false;
    }
  }
  if (args.format != "text" && args.format != "json") {
    std::cerr << "rwprove: --format must be text or json\n";
    return false;
  }
  if (!args.help && (args.netlist.empty() || args.fresh_path.empty())) {
    print_usage(std::cerr);
    return false;
  }
  return true;
}

void append_real_interval_json(std::string& out, const rw::stress::RealInterval& v) {
  out += "{\"lo\":" + rw::util::format_fixed(v.lo, 6) +
         ",\"hi\":" + rw::util::format_fixed(v.hi, 6) + "}";
}

void print_json(const rw::netlist::Module& module, const rw::sta::IntervalSta& ista,
                const rw::sta::ProveSummary& summary,
                const std::vector<rw::lint::Diagnostic>& diagnostics, bool have_guardband,
                bool certified) {
  using rw::util::append_json_string;
  std::string out = "{\"module\":";
  append_json_string(out, module.name());
  out += ",\"fresh_cp_ps\":" + rw::util::format_fixed(summary.fresh_cp_ps, 6);
  out += ",\"aged_cp_ps\":";
  append_real_interval_json(out, summary.aged_cp_ps);
  out += std::string(",\"vacuous\":") + (summary.vacuous ? "true" : "false");
  if (have_guardband) {
    out += ",\"guardband_ps\":" + rw::util::format_fixed(summary.guardband_ps, 6);
    out += std::string(",\"certified\":") + (certified ? "true" : "false");
  }
  out += ",\"endpoints\":[";
  const auto& endpoints = ista.endpoints();
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const auto& ep = endpoints[i];
    if (i != 0) out += ',';
    out += "{\"net\":";
    append_json_string(out, module.net_name(ep.net));
    out += std::string(",\"edge\":\"") + (ep.rising ? "rise" : "fall") + "\"";
    out += ",\"arrival\":";
    append_real_interval_json(out, ep.arrival_ps);
    out += ",\"setup\":";
    append_real_interval_json(out, ep.setup_ps);
    out += ",\"cost\":";
    append_real_interval_json(out, ep.cost_ps());
    out += std::string(",\"vacuous\":") + (ep.vacuous ? "true" : "false");
    out += '}';
  }
  out += "],\"blame\":[";
  for (std::size_t i = 0; i < summary.blame.size(); ++i) {
    const auto& b = summary.blame[i];
    if (i != 0) out += ',';
    out += "{\"instance\":";
    append_json_string(out, b.instance);
    out += ",\"cell\":";
    append_json_string(out, b.cell);
    out += ",\"pin\":";
    append_json_string(out, b.pin);
    out += ",\"width_ps\":" + rw::util::format_fixed(b.width_ps, 6);
    out += ",\"interp_ps\":" + rw::util::format_fixed(b.interp_ps, 6);
    out += '}';
  }
  out += "],\"vacuous_instances\":[";
  for (std::size_t i = 0; i < summary.vacuous_instances.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, summary.vacuous_instances[i]);
  }
  out += "],\"lint\":" + rw::lint::to_json(diagnostics) + "}";
  std::cout << out << "\n";
}

void print_text(const rw::netlist::Module& module, const rw::sta::IntervalSta& ista,
                const rw::sta::ProveSummary& summary,
                const std::vector<rw::lint::Diagnostic>& diagnostics, bool have_guardband,
                bool certified) {
  std::cout << "module " << module.name() << ": fresh critical path "
            << rw::util::format_fixed(summary.fresh_cp_ps, 4) << " ps\n"
            << "proven aged critical path " << summary.aged_cp_ps.str() << " ps (width "
            << rw::util::format_fixed(summary.aged_cp_ps.width(), 4) << " ps)"
            << (summary.vacuous ? " VACUOUS" : "") << "\n";
  if (have_guardband) {
    std::cout << "guardband " << rw::util::format_fixed(summary.guardband_ps, 4) << " ps: "
              << (certified ? "CERTIFIED" : "REFUTED") << " (proven requirement "
              << rw::util::format_fixed(summary.aged_cp_ps.hi - summary.fresh_cp_ps, 4)
              << " ps)\n";
  }
  for (const auto& ep : ista.endpoints()) {
    std::cout << "endpoint " << module.net_name(ep.net) << " (" << (ep.rising ? "rise" : "fall")
              << "): arrival " << ep.arrival_ps.str() << ", cost " << ep.cost_ps().str()
              << (ep.vacuous ? " vacuous" : "") << "\n";
  }
  for (const auto& b : summary.blame) {
    std::cout << "blame " << b.instance << "/" << b.pin << " (" << b.cell << "): width "
              << rw::util::format_fixed(b.width_ps, 4) << " ps, interp "
              << rw::util::format_fixed(b.interp_ps, 4) << " ps\n";
  }
  std::cout << rw::lint::format_report(diagnostics);
  std::cout << "rwprove: " << rw::lint::count(diagnostics, rw::lint::Severity::kError)
            << " error(s), " << rw::lint::count(diagnostics, rw::lint::Severity::kWarning)
            << " warning(s), " << rw::lint::count(diagnostics, rw::lint::Severity::kInfo)
            << " info\n";
}

rw::lint::Diagnostic io_error(const std::string& path, const std::string& what) {
  return rw::lint::Diagnostic{"IO001", rw::lint::Severity::kError, path, what,
                              "fix the file or the flag pointing at it"};
}

int exit_code(const std::vector<rw::lint::Diagnostic>& diagnostics) {
  switch (rw::lint::worst_severity(diagnostics)) {
    case rw::lint::Severity::kError:
      return 2;
    case rw::lint::Severity::kWarning:
      return 1;
    case rw::lint::Severity::kInfo:
      return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();
  rw::util::consume_thread_flag(argc, argv);
  Args args;
  if (!parse_args(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_usage(std::cout);
    return 0;
  }

  std::vector<rw::lint::Diagnostic> report;
  rw::liberty::Library fresh("fresh");
  try {
    fresh = rw::liberty::parse_library_file(args.fresh_path);
  } catch (const std::exception& e) {
    report.push_back(io_error(args.fresh_path, e.what()));
  }
  // λ-indexed corner cells, pooled across every --lib.
  rw::liberty::Library corners_pool("rwprove_corners");
  for (const auto& path : args.lib_paths) {
    try {
      const rw::liberty::Library lib = rw::liberty::parse_library_file(path);
      for (const auto& cell : lib.cells()) {
        if (corners_pool.find(cell.name) == nullptr) corners_pool.add_cell(cell);
      }
    } catch (const std::exception& e) {
      report.push_back(io_error(path, e.what()));
    }
  }
  if (!report.empty()) {
    std::cout << rw::lint::format_report(report);
    return exit_code(report);
  }

  rw::netlist::Module module("empty");
  try {
    module = rw::netlist::parse_verilog_file(args.netlist, fresh, {.lenient = true});
  } catch (const std::exception& e) {
    report.push_back(io_error(args.netlist, e.what()));
    std::cout << rw::lint::format_report(report);
    return exit_code(report);
  }

  // Structural + annotation + SP pre-flight against the fresh library; the
  // interval STA needs a sound module, so errors end the run here.
  rw::lint::LintSubject subject;
  subject.module = &module;
  subject.library = &fresh;
  subject.stress = &args.stress;
  subject.lambda_step = args.lambda_step;
  std::vector<rw::lint::Diagnostic> diagnostics =
      rw::lint::Linter::netlist_linter().run(subject);
  if (rw::lint::worst_severity(diagnostics) >= rw::lint::Severity::kError) {
    std::cout << rw::lint::format_report(diagnostics);
    return exit_code(diagnostics);
  }

  try {
    const rw::stress::StressReport stress = rw::stress::analyze(module, fresh, args.stress);
    const std::vector<rw::charlib::InstanceCorners> corners = rw::charlib::corners_from_library(
        module, stress, corners_pool, fresh, args.lambda_step);
    const rw::sta::IntervalSta ista(module, fresh, corners);
    const double fresh_cp = rw::sta::Sta(module, fresh).critical_delay_ps();
    rw::sta::ProveSummary summary = ista.summarize(fresh_cp);
    summary.guardband_ps = args.guardband_ps;
    summary.width_budget_ps = args.budget_ps;

    rw::lint::Linter prove_linter;
    prove_linter.add_rules(rw::lint::prove_rules());
    rw::lint::LintSubject prove_subject;
    prove_subject.module = &module;
    prove_subject.prove = &summary;
    for (auto& d : prove_linter.run(prove_subject)) diagnostics.push_back(std::move(d));

    const bool have_guardband = args.guardband_ps >= 0.0;
    const bool certified =
        have_guardband &&
        rw::lint::worst_severity(diagnostics) < rw::lint::Severity::kError;
    if (args.format == "json") {
      print_json(module, ista, summary, diagnostics, have_guardband, certified);
    } else {
      print_text(module, ista, summary, diagnostics, have_guardband, certified);
    }
    return exit_code(diagnostics);
  } catch (const std::exception& e) {
    std::cout << rw::lint::format_report(diagnostics);
    std::cerr << "rwprove: " << e.what() << "\n";
    return 2;
  }
}
