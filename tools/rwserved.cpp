/// \file rwserved.cpp
/// `rwserved` — the crash-tolerant characterization daemon. Accepts NDJSON
/// requests (see serve/protocol.hpp) on a Unix-domain socket, shards the
/// (scenario, cell) work across fork-based workers with leased deadlines,
/// and serves every byte from the shared disk cache. SIGTERM (or a client
/// op=shutdown) drains gracefully: admitted work finishes, new requests are
/// shed as "draining", workers exit, an optional report is written.
///
/// Exit codes:
///   0  clean drain
///   2  startup failure (socket taken by a live daemon, no cache dir)
///   64 usage error
///
/// Typical runs:
///   rwserved --socket /tmp/rw.sock --cache ~/.cache/reliaware --workers 4
///   RW_SERVE_WORKERS=8 RW_SERVE_LEASE_MS=60000 rwserved --socket /tmp/rw.sock
///   rwserved --gc --cache ~/.cache/reliaware --gc-max-age-ms 86400000

#include <cstdlib>
#include <iostream>
#include <string>

#include "charlib/opc.hpp"
#include "flow/cancel.hpp"
#include "serve/gc.hpp"
#include "serve/server.hpp"
#include "util/strings.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwserved --socket PATH [options]\n"
        "  --socket PATH     Unix-domain socket ($RW_SERVE_SOCKET)\n"
        "  --cache DIR       disk cache root ($RW_LIBCACHE)\n"
        "  --workers N       worker processes ($RW_SERVE_WORKERS, default 2)\n"
        "  --lease-ms MS     per-task lease deadline ($RW_SERVE_LEASE_MS, default 10000)\n"
        "  --queue-max N     queued+leased task bound ($RW_SERVE_QUEUE_MAX, default 64)\n"
        "  --grid paper|coarse  OPC grid (default paper)\n"
        "  --cells A,B,C     restrict the cell catalog (tests)\n"
        "  --resume          honor an existing manifest.json\n"
        "  --report PATH     write a drain report JSON on shutdown\n"
        "  --steal-ms MS     fleet spool scan cadence ($RW_SERVE_STEAL_MS, default 1000)\n"
        "  --spool-ttl-ms MS spool entry TTL before peers may steal\n"
        "                    ($RW_SERVE_SPOOL_TTL_MS, default 60000)\n"
        "  --op-max N        concurrent prove/guardband runners ($RW_SERVE_OP_MAX, default 2)\n"
        "  --op-deadline-ms MS  default per-op deadline ($RW_SERVE_OP_DEADLINE_MS)\n"
        "  --gc              one-shot cache GC sweep (needs --cache), then exit\n"
        "  --gc-max-age-ms MS   GC idle-age threshold ($RW_SERVE_GC_MAX_AGE_MS, default 7d)\n"
        "  --gc-dry-run      with --gc: report what WOULD be evicted, delete nothing\n"
        "  -h, --help        this message\n"
        "exit codes: 0 clean drain / gc done, 2 startup failure, 64 usage\n";
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();  // SIGTERM/SIGINT -> drain, SIGPIPE -> EPIPE
  rw::flow::install_deadline_from_env();

  rw::serve::ServeOptions options = rw::serve::ServeOptions::from_env();
  bool gc_oneshot = false;
  bool gc_dry_run = false;
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwserved: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "-h" || a == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (a == "--socket") {
      if ((v = need_value(i, "--socket")) == nullptr) return kExitUsage;
      options.socket_path = v;
    } else if (a == "--cache") {
      if ((v = need_value(i, "--cache")) == nullptr) return kExitUsage;
      options.factory.cache_dir = v;
    } else if (a == "--workers") {
      if ((v = need_value(i, "--workers")) == nullptr) return kExitUsage;
      options.workers = std::atoi(v);
      if (options.workers < 1) {
        std::cerr << "rwserved: --workers must be >= 1\n";
        return kExitUsage;
      }
    } else if (a == "--lease-ms") {
      if ((v = need_value(i, "--lease-ms")) == nullptr) return kExitUsage;
      options.lease_ms = std::atof(v);
    } else if (a == "--queue-max") {
      if ((v = need_value(i, "--queue-max")) == nullptr) return kExitUsage;
      options.queue_max = std::atoi(v);
    } else if (a == "--grid") {
      if ((v = need_value(i, "--grid")) == nullptr) return kExitUsage;
      const std::string grid = v;
      if (grid == "paper") {
        options.factory.characterize.grid = rw::charlib::OpcGrid::paper();
      } else if (grid == "coarse") {
        options.factory.characterize.grid = rw::charlib::OpcGrid::coarse();
      } else {
        std::cerr << "rwserved: unknown grid \"" << grid << "\"\n";
        return kExitUsage;
      }
    } else if (a == "--cells") {
      if ((v = need_value(i, "--cells")) == nullptr) return kExitUsage;
      options.factory.cell_subset = rw::util::split(v, ",");
    } else if (a == "--resume") {
      options.factory.resume = true;
    } else if (a == "--report") {
      if ((v = need_value(i, "--report")) == nullptr) return kExitUsage;
      options.report_path = v;
    } else if (a == "--steal-ms") {
      if ((v = need_value(i, "--steal-ms")) == nullptr) return kExitUsage;
      options.steal_interval_ms = std::atof(v);
    } else if (a == "--spool-ttl-ms") {
      if ((v = need_value(i, "--spool-ttl-ms")) == nullptr) return kExitUsage;
      options.spool_ttl_ms = std::atof(v);
    } else if (a == "--op-max") {
      if ((v = need_value(i, "--op-max")) == nullptr) return kExitUsage;
      options.op_max = std::atoi(v);
      if (options.op_max < 1) {
        std::cerr << "rwserved: --op-max must be >= 1\n";
        return kExitUsage;
      }
    } else if (a == "--op-deadline-ms") {
      if ((v = need_value(i, "--op-deadline-ms")) == nullptr) return kExitUsage;
      options.op_deadline_ms = std::atof(v);
    } else if (a == "--gc") {
      gc_oneshot = true;
    } else if (a == "--gc-max-age-ms") {
      if ((v = need_value(i, "--gc-max-age-ms")) == nullptr) return kExitUsage;
      options.gc_max_age_ms = std::atof(v);
    } else if (a == "--gc-dry-run") {
      gc_dry_run = true;
    } else {
      std::cerr << "rwserved: unknown argument " << a << "\n";
      print_usage(std::cerr);
      return kExitUsage;
    }
  }
  if (gc_oneshot) {
    // One-shot sweep: no socket, no workers — just the crash-safe GC over
    // the shared cache, the same code path op=gc runs in a live daemon.
    if (options.factory.cache_dir.empty()) {
      std::cerr << "rwserved: --gc needs --cache (or $RW_LIBCACHE)\n";
      return kExitUsage;
    }
    try {
      rw::serve::GcOptions gc;
      gc.cache_dir = options.factory.cache_dir;
      gc.max_age_ms = options.gc_max_age_ms;
      gc.dry_run = gc_dry_run;
      const rw::serve::GcResult swept = rw::serve::gc_sweep(gc);
      for (const auto& [name, value] : swept.as_pairs()) {
        std::cout << name << " = " << static_cast<long>(value) << "\n";
      }
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "rwserved: gc failed: " << e.what() << "\n";
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << "rwserved: --socket (or $RW_SERVE_SOCKET) is required\n";
    print_usage(std::cerr);
    return kExitUsage;
  }

  rw::serve::Server server(std::move(options));
  return server.run();
}
