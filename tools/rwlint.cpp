/// \file rwlint.cpp
/// `rwlint` — design-rule static analysis over the repo's own artifacts:
/// structural Verilog netlists (including λ-annotated ones), Liberty
/// libraries, and the consistency between the two. Netlists are parsed in
/// lenient mode so every violation is reported, not just the first.
///
/// Exit codes (severity-based):
///   0  clean, or info-level findings only
///   1  warnings
///   2  errors
///   64 usage error (bad flags), as in sysexits.h
///
/// Typical runs:
///   rwlint --lib merged.lib annotated.v
///   rwlint --format json --lib fresh.lib --grid 7x7 design.v
///   rwlint --fresh fresh.lib --lib aged10y.lib          # library-only lint

#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "charlib/opc.hpp"
#include "flow/orchestrator.hpp"
#include "liberty/library.hpp"
#include "liberty/parser.hpp"
#include "lint/baseline.hpp"
#include "lint/linter.hpp"
#include "util/atomic_file.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr int kExitUsage = 64;

void print_usage(std::ostream& os) {
  os << "usage: rwlint [options] [netlist.v ...]\n"
        "  --lib FILE       Liberty library to lint and resolve cells against (repeatable)\n"
        "  --fresh FILE     fresh baseline library (enables aged-vs-fresh checks)\n"
        "  --grid SPEC      expected OPC grid: 7x7 (paper), 3x3 (coarse), or none\n"
        "  --flow-manifest FILE  check a flow checkpoint manifest against its\n"
        "                   artifacts (FL001; repeatable)\n"
        "  --cache-dir DIR  scan a characterization cache for stale serve\n"
        "                   artifacts: dead leases, dead sockets (SV001)\n"
        "  --format FMT     output format: text (default) or json\n"
        "  --baseline FILE  suppress findings recorded in FILE; when FILE does not\n"
        "                   exist, record the current findings into it and exit 0\n"
        "  --update-baseline  with --baseline: rewrite FILE from this run's findings\n"
        "  --threads N      worker threads for parallel rule execution\n"
        "  --list-rules     print the rule catalog and exit\n"
        "  --explain ID     print one rule's description and fix hint, then exit\n"
        "  -h, --help       this message\n"
        "exit codes: 0 clean/info, 1 warnings, 2 errors, 64 usage error\n";
}

void list_rules() {
  const rw::lint::Linter linter = rw::lint::Linter::all_rules();
  for (const auto& rule : linter.rules()) {
    std::cout << rule->id() << ": " << rule->description() << "\n";
  }
}

/// `--explain SP001` prints the catalog entry: what the rule flags, at which
/// severity, and how to fix it. Unknown ids exit with the usage code.
int explain_rule(const std::string& id) {
  const rw::lint::RuleInfo* info = rw::lint::find_rule_info(id);
  if (info == nullptr) {
    std::cerr << "rwlint: unknown rule id '" << id << "' (see --list-rules)\n";
    return kExitUsage;
  }
  std::cout << info->id << " (" << rw::lint::to_string(info->severity) << "): " << info->summary
            << "\n  fix: " << info->fix_hint << "\n";
  return 0;
}

struct Args {
  std::vector<std::string> lib_paths;
  std::string fresh_path;
  std::string grid;
  std::string format = "text";
  std::string explain;
  std::string baseline;
  bool update_baseline = false;
  std::vector<std::string> flow_manifests;
  std::string cache_dir;
  std::vector<std::string> netlists;
  bool list = false;
  bool help = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "rwlint: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--lib") {
      const char* v = need_value(i, "--lib");
      if (v == nullptr) return false;
      args.lib_paths.emplace_back(v);
    } else if (a == "--fresh") {
      const char* v = need_value(i, "--fresh");
      if (v == nullptr) return false;
      args.fresh_path = v;
    } else if (a == "--grid") {
      const char* v = need_value(i, "--grid");
      if (v == nullptr) return false;
      args.grid = v;
    } else if (a == "--flow-manifest") {
      const char* v = need_value(i, "--flow-manifest");
      if (v == nullptr) return false;
      args.flow_manifests.emplace_back(v);
    } else if (a == "--cache-dir") {
      const char* v = need_value(i, "--cache-dir");
      if (v == nullptr) return false;
      args.cache_dir = v;
    } else if (a == "--format") {
      const char* v = need_value(i, "--format");
      if (v == nullptr) return false;
      args.format = v;
    } else if (a == "--baseline") {
      const char* v = need_value(i, "--baseline");
      if (v == nullptr) return false;
      args.baseline = v;
    } else if (a == "--update-baseline") {
      args.update_baseline = true;
    } else if (a == "--list-rules") {
      args.list = true;
    } else if (a == "--explain") {
      const char* v = need_value(i, "--explain");
      if (v == nullptr) return false;
      args.explain = v;
    } else if (a == "-h" || a == "--help") {
      args.help = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "rwlint: unknown flag " << a << "\n";
      return false;
    } else {
      args.netlists.push_back(a);
    }
  }
  if (args.format != "text" && args.format != "json") {
    std::cerr << "rwlint: --format must be text or json\n";
    return false;
  }
  if (!args.grid.empty() && args.grid != "7x7" && args.grid != "3x3" && args.grid != "none") {
    std::cerr << "rwlint: --grid must be 7x7, 3x3, or none\n";
    return false;
  }
  if (args.update_baseline && args.baseline.empty()) {
    std::cerr << "rwlint: --update-baseline needs --baseline FILE\n";
    return false;
  }
  if (!args.netlists.empty() && args.lib_paths.empty()) {
    std::cerr << "rwlint: netlists need at least one --lib to resolve cells\n";
    return false;
  }
  if (args.netlists.empty() && args.lib_paths.empty() && args.flow_manifests.empty() &&
      args.cache_dir.empty() && !args.list && !args.help && args.explain.empty()) {
    print_usage(std::cerr);
    return false;
  }
  return true;
}

/// File-level failures (unreadable, unparsable) become diagnostics so the
/// report — and the JSON output — stays complete and well-formed.
rw::lint::Diagnostic io_error(const std::string& path, const std::string& what) {
  return rw::lint::Diagnostic{"IO001", rw::lint::Severity::kError, path, what,
                              "fix the file or the flag pointing at it"};
}

}  // namespace

int main(int argc, char** argv) {
  rw::flow::install_signal_handlers();
  rw::flow::install_deadline_from_env();
  rw::util::consume_thread_flag(argc, argv);
  Args args;
  if (!parse_args(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_usage(std::cout);
    return 0;
  }
  if (args.list) {
    list_rules();
    return 0;
  }
  if (!args.explain.empty()) return explain_rule(args.explain);

  rw::charlib::OpcGrid grid;
  const rw::charlib::OpcGrid* expected_grid = nullptr;
  if (args.grid == "7x7") {
    grid = rw::charlib::OpcGrid::paper();
    expected_grid = &grid;
  } else if (args.grid == "3x3") {
    grid = rw::charlib::OpcGrid::coarse();
    expected_grid = &grid;
  }

  std::vector<rw::lint::Diagnostic> report;
  const auto append = [&report](std::vector<rw::lint::Diagnostic> diags) {
    for (auto& d : diags) report.push_back(std::move(d));
  };

  rw::liberty::Library fresh("fresh");
  bool have_fresh = false;
  if (!args.fresh_path.empty()) {
    try {
      fresh = rw::liberty::parse_library_file(args.fresh_path);
      have_fresh = true;
    } catch (const std::exception& e) {
      report.push_back(io_error(args.fresh_path, e.what()));
    }
  }

  // Lint each library on its own (grid/value/arc rules see one coherent
  // artifact), then pool every cell into a union library that resolves the
  // netlists' cell references.
  const rw::lint::Linter lib_linter = rw::lint::Linter::library_linter();
  rw::liberty::Library pool("rwlint_pool");
  if (have_fresh) {
    rw::lint::LintSubject subject;
    subject.library = &fresh;
    subject.expected_grid = expected_grid;
    append(lib_linter.run(subject));
    for (const auto& cell : fresh.cells()) {
      if (pool.find(cell.name) == nullptr) pool.add_cell(cell);
    }
  }
  for (const auto& path : args.lib_paths) {
    try {
      const rw::liberty::Library lib = rw::liberty::parse_library_file(path);
      rw::lint::LintSubject subject;
      subject.library = &lib;
      subject.fresh = have_fresh ? &fresh : nullptr;
      subject.expected_grid = expected_grid;
      append(lib_linter.run(subject));
      for (const auto& cell : lib.cells()) {
        if (pool.find(cell.name) == nullptr) pool.add_cell(cell);
      }
    } catch (const std::exception& e) {
      report.push_back(io_error(path, e.what()));
    }
  }

  const rw::lint::Linter netlist_linter = rw::lint::Linter::netlist_linter();
  for (const auto& path : args.netlists) {
    try {
      const rw::netlist::Module module =
          rw::netlist::parse_verilog_file(path, pool, {.lenient = true});
      rw::lint::LintSubject subject;
      subject.module = &module;
      subject.library = &pool;
      append(netlist_linter.run(subject));
    } catch (const std::exception& e) {
      report.push_back(io_error(path, e.what()));
    }
  }

  // FL001: flow checkpoint manifests vs the artifacts they reference.
  for (const auto& path : args.flow_manifests) {
    append(rw::flow::lint_flow_manifest(path));
  }

  // SV001: stale serve artifacts (dead leases/sockets) in a cache root.
  if (!args.cache_dir.empty()) {
    rw::lint::Linter serve_linter;
    serve_linter.add_rules(rw::lint::serve_rules());
    rw::lint::LintSubject subject;
    subject.cache_dir = args.cache_dir;
    append(serve_linter.run(subject));
  }

  // Baseline handling: an existing file suppresses exact matches (only *new*
  // findings affect the exit code); a missing file — or --update-baseline —
  // records this run's findings as the accepted set.
  std::size_t suppressed = 0;
  if (!args.baseline.empty()) {
    std::set<std::string> keys;
    if (!args.update_baseline && rw::lint::read_baseline(args.baseline, keys)) {
      suppressed = rw::lint::suppress_baselined(report, keys);
    } else {
      if (!rw::util::write_file_atomic_nothrow(args.baseline,
                                               rw::lint::encode_baseline(report))) {
        report.push_back(io_error(args.baseline, "cannot write baseline file"));
      } else {
        std::cerr << "rwlint: recorded " << report.size() << " finding(s) to baseline "
                  << args.baseline << "\n";
        suppressed = report.size();
        report.clear();
      }
    }
  }

  if (args.format == "json") {
    std::cout << rw::lint::to_json(report) << "\n";
  } else {
    std::cout << rw::lint::format_report(report);
    std::cout << "rwlint: " << rw::lint::count(report, rw::lint::Severity::kError) << " error(s), "
              << rw::lint::count(report, rw::lint::Severity::kWarning) << " warning(s), "
              << rw::lint::count(report, rw::lint::Severity::kInfo) << " info";
    if (suppressed != 0) std::cout << ", " << suppressed << " suppressed by baseline";
    std::cout << "\n";
  }
  switch (rw::lint::worst_severity(report)) {
    case rw::lint::Severity::kError:
      return 2;
    case rw::lint::Severity::kWarning:
      return 1;
    case rw::lint::Severity::kInfo:
      return 0;
  }
  return 0;
}
