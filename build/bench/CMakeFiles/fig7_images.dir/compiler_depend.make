# Empty compiler generated dependencies file for fig7_images.
# This may be replaced when dependencies are built.
