file(REMOVE_RECURSE
  "CMakeFiles/fig7_images.dir/fig7_images.cpp.o"
  "CMakeFiles/fig7_images.dir/fig7_images.cpp.o.d"
  "fig7_images"
  "fig7_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
