file(REMOVE_RECURSE
  "CMakeFiles/fig5a_mobility.dir/fig5a_mobility.cpp.o"
  "CMakeFiles/fig5a_mobility.dir/fig5a_mobility.cpp.o.d"
  "fig5a_mobility"
  "fig5a_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
