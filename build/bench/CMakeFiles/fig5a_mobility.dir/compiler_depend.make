# Empty compiler generated dependencies file for fig5a_mobility.
# This may be replaced when dependencies are built.
