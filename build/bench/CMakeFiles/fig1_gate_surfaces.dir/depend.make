# Empty dependencies file for fig1_gate_surfaces.
# This may be replaced when dependencies are built.
