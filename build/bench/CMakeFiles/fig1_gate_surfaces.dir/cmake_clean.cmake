file(REMOVE_RECURSE
  "CMakeFiles/fig1_gate_surfaces.dir/fig1_gate_surfaces.cpp.o"
  "CMakeFiles/fig1_gate_surfaces.dir/fig1_gate_surfaces.cpp.o.d"
  "fig1_gate_surfaces"
  "fig1_gate_surfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gate_surfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
