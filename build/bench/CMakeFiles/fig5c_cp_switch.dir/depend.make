# Empty dependencies file for fig5c_cp_switch.
# This may be replaced when dependencies are built.
