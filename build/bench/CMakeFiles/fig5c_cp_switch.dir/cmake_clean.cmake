file(REMOVE_RECURSE
  "CMakeFiles/fig5c_cp_switch.dir/fig5c_cp_switch.cpp.o"
  "CMakeFiles/fig5c_cp_switch.dir/fig5c_cp_switch.cpp.o.d"
  "fig5c_cp_switch"
  "fig5c_cp_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_cp_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
