file(REMOVE_RECURSE
  "CMakeFiles/fig6a_containment.dir/fig6a_containment.cpp.o"
  "CMakeFiles/fig6a_containment.dir/fig6a_containment.cpp.o.d"
  "fig6a_containment"
  "fig6a_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
