# Empty dependencies file for fig6a_containment.
# This may be replaced when dependencies are built.
