# Empty compiler generated dependencies file for ablation_aging_model.
# This may be replaced when dependencies are built.
