file(REMOVE_RECURSE
  "CMakeFiles/ablation_aging_model.dir/ablation_aging_model.cpp.o"
  "CMakeFiles/ablation_aging_model.dir/ablation_aging_model.cpp.o.d"
  "ablation_aging_model"
  "ablation_aging_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aging_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
