file(REMOVE_RECURSE
  "CMakeFiles/fig5b_single_opc.dir/fig5b_single_opc.cpp.o"
  "CMakeFiles/fig5b_single_opc.dir/fig5b_single_opc.cpp.o.d"
  "fig5b_single_opc"
  "fig5b_single_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_single_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
