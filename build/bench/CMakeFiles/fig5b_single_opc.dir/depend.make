# Empty dependencies file for fig5b_single_opc.
# This may be replaced when dependencies are built.
