# Empty compiler generated dependencies file for fig6c_psnr.
# This may be replaced when dependencies are built.
