file(REMOVE_RECURSE
  "CMakeFiles/fig6c_psnr.dir/fig6c_psnr.cpp.o"
  "CMakeFiles/fig6c_psnr.dir/fig6c_psnr.cpp.o.d"
  "fig6c_psnr"
  "fig6c_psnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
