file(REMOVE_RECURSE
  "CMakeFiles/fig6b_area.dir/fig6b_area.cpp.o"
  "CMakeFiles/fig6b_area.dir/fig6b_area.cpp.o.d"
  "fig6b_area"
  "fig6b_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
