# Empty compiler generated dependencies file for fig6b_area.
# This may be replaced when dependencies are built.
