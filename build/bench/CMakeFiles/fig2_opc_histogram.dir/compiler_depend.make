# Empty compiler generated dependencies file for fig2_opc_histogram.
# This may be replaced when dependencies are built.
