file(REMOVE_RECURSE
  "CMakeFiles/fig2_opc_histogram.dir/fig2_opc_histogram.cpp.o"
  "CMakeFiles/fig2_opc_histogram.dir/fig2_opc_histogram.cpp.o.d"
  "fig2_opc_histogram"
  "fig2_opc_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_opc_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
