file(REMOVE_RECURSE
  "CMakeFiles/dyn_workload_guardband.dir/dyn_workload_guardband.cpp.o"
  "CMakeFiles/dyn_workload_guardband.dir/dyn_workload_guardband.cpp.o.d"
  "dyn_workload_guardband"
  "dyn_workload_guardband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_workload_guardband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
