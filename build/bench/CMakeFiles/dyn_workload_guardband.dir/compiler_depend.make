# Empty compiler generated dependencies file for dyn_workload_guardband.
# This may be replaced when dependencies are built.
