# Empty dependencies file for fig3_path_switch.
# This may be replaced when dependencies are built.
