file(REMOVE_RECURSE
  "CMakeFiles/fig3_path_switch.dir/fig3_path_switch.cpp.o"
  "CMakeFiles/fig3_path_switch.dir/fig3_path_switch.cpp.o.d"
  "fig3_path_switch"
  "fig3_path_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_path_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
