# Empty dependencies file for example_image_aging_demo.
# This may be replaced when dependencies are built.
