file(REMOVE_RECURSE
  "CMakeFiles/example_image_aging_demo.dir/image_aging_demo.cpp.o"
  "CMakeFiles/example_image_aging_demo.dir/image_aging_demo.cpp.o.d"
  "example_image_aging_demo"
  "example_image_aging_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_aging_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
