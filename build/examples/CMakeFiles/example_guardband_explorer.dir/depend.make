# Empty dependencies file for example_guardband_explorer.
# This may be replaced when dependencies are built.
