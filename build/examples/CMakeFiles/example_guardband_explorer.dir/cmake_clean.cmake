file(REMOVE_RECURSE
  "CMakeFiles/example_guardband_explorer.dir/guardband_explorer.cpp.o"
  "CMakeFiles/example_guardband_explorer.dir/guardband_explorer.cpp.o.d"
  "example_guardband_explorer"
  "example_guardband_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_guardband_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
