file(REMOVE_RECURSE
  "CMakeFiles/example_generate_libraries.dir/generate_libraries.cpp.o"
  "CMakeFiles/example_generate_libraries.dir/generate_libraries.cpp.o.d"
  "example_generate_libraries"
  "example_generate_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generate_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
