# Empty dependencies file for example_generate_libraries.
# This may be replaced when dependencies are built.
