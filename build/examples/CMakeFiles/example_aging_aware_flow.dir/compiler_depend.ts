# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_aging_aware_flow.
