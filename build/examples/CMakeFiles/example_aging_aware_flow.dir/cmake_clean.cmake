file(REMOVE_RECURSE
  "CMakeFiles/example_aging_aware_flow.dir/aging_aware_flow.cpp.o"
  "CMakeFiles/example_aging_aware_flow.dir/aging_aware_flow.cpp.o.d"
  "example_aging_aware_flow"
  "example_aging_aware_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_aging_aware_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
