# Empty dependencies file for example_aging_aware_flow.
# This may be replaced when dependencies are built.
