src/CMakeFiles/reliaware.dir/device/ptm45.cpp.o: \
 /root/repo/src/device/ptm45.cpp /usr/include/stdc-predef.h \
 /root/repo/src/device/ptm45.hpp /root/repo/src/device/mosfet.hpp
