
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aging/bti.cpp" "src/CMakeFiles/reliaware.dir/aging/bti.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/aging/bti.cpp.o.d"
  "/root/repo/src/aging/scenario.cpp" "src/CMakeFiles/reliaware.dir/aging/scenario.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/aging/scenario.cpp.o.d"
  "/root/repo/src/cells/catalog.cpp" "src/CMakeFiles/reliaware.dir/cells/catalog.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/cells/catalog.cpp.o.d"
  "/root/repo/src/cells/function.cpp" "src/CMakeFiles/reliaware.dir/cells/function.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/cells/function.cpp.o.d"
  "/root/repo/src/cells/topology.cpp" "src/CMakeFiles/reliaware.dir/cells/topology.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/cells/topology.cpp.o.d"
  "/root/repo/src/charlib/characterizer.cpp" "src/CMakeFiles/reliaware.dir/charlib/characterizer.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/charlib/characterizer.cpp.o.d"
  "/root/repo/src/charlib/factory.cpp" "src/CMakeFiles/reliaware.dir/charlib/factory.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/charlib/factory.cpp.o.d"
  "/root/repo/src/charlib/opc.cpp" "src/CMakeFiles/reliaware.dir/charlib/opc.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/charlib/opc.cpp.o.d"
  "/root/repo/src/circuits/arith.cpp" "src/CMakeFiles/reliaware.dir/circuits/arith.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/circuits/arith.cpp.o.d"
  "/root/repo/src/circuits/dct.cpp" "src/CMakeFiles/reliaware.dir/circuits/dct.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/circuits/dct.cpp.o.d"
  "/root/repo/src/circuits/dsp.cpp" "src/CMakeFiles/reliaware.dir/circuits/dsp.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/circuits/dsp.cpp.o.d"
  "/root/repo/src/circuits/fft.cpp" "src/CMakeFiles/reliaware.dir/circuits/fft.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/circuits/fft.cpp.o.d"
  "/root/repo/src/circuits/risc.cpp" "src/CMakeFiles/reliaware.dir/circuits/risc.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/circuits/risc.cpp.o.d"
  "/root/repo/src/circuits/vliw.cpp" "src/CMakeFiles/reliaware.dir/circuits/vliw.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/circuits/vliw.cpp.o.d"
  "/root/repo/src/device/mosfet.cpp" "src/CMakeFiles/reliaware.dir/device/mosfet.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/device/mosfet.cpp.o.d"
  "/root/repo/src/device/ptm45.cpp" "src/CMakeFiles/reliaware.dir/device/ptm45.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/device/ptm45.cpp.o.d"
  "/root/repo/src/flow/aging_aware_synthesis.cpp" "src/CMakeFiles/reliaware.dir/flow/aging_aware_synthesis.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/flow/aging_aware_synthesis.cpp.o.d"
  "/root/repo/src/flow/guardband_flow.cpp" "src/CMakeFiles/reliaware.dir/flow/guardband_flow.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/flow/guardband_flow.cpp.o.d"
  "/root/repo/src/flow/libgen.cpp" "src/CMakeFiles/reliaware.dir/flow/libgen.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/flow/libgen.cpp.o.d"
  "/root/repo/src/image/chain.cpp" "src/CMakeFiles/reliaware.dir/image/chain.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/image/chain.cpp.o.d"
  "/root/repo/src/image/dct2d.cpp" "src/CMakeFiles/reliaware.dir/image/dct2d.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/image/dct2d.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/CMakeFiles/reliaware.dir/image/image.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/image/image.cpp.o.d"
  "/root/repo/src/image/psnr.cpp" "src/CMakeFiles/reliaware.dir/image/psnr.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/image/psnr.cpp.o.d"
  "/root/repo/src/liberty/library.cpp" "src/CMakeFiles/reliaware.dir/liberty/library.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/liberty/library.cpp.o.d"
  "/root/repo/src/liberty/merge.cpp" "src/CMakeFiles/reliaware.dir/liberty/merge.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/liberty/merge.cpp.o.d"
  "/root/repo/src/liberty/parser.cpp" "src/CMakeFiles/reliaware.dir/liberty/parser.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/liberty/parser.cpp.o.d"
  "/root/repo/src/liberty/table.cpp" "src/CMakeFiles/reliaware.dir/liberty/table.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/liberty/table.cpp.o.d"
  "/root/repo/src/liberty/writer.cpp" "src/CMakeFiles/reliaware.dir/liberty/writer.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/liberty/writer.cpp.o.d"
  "/root/repo/src/logicsim/activity.cpp" "src/CMakeFiles/reliaware.dir/logicsim/activity.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/logicsim/activity.cpp.o.d"
  "/root/repo/src/logicsim/simulator.cpp" "src/CMakeFiles/reliaware.dir/logicsim/simulator.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/logicsim/simulator.cpp.o.d"
  "/root/repo/src/logicsim/timingsim.cpp" "src/CMakeFiles/reliaware.dir/logicsim/timingsim.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/logicsim/timingsim.cpp.o.d"
  "/root/repo/src/logicsim/value.cpp" "src/CMakeFiles/reliaware.dir/logicsim/value.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/logicsim/value.cpp.o.d"
  "/root/repo/src/netlist/annotate.cpp" "src/CMakeFiles/reliaware.dir/netlist/annotate.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/netlist/annotate.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/reliaware.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/reliaware.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/sdf.cpp" "src/CMakeFiles/reliaware.dir/netlist/sdf.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/netlist/sdf.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/CMakeFiles/reliaware.dir/netlist/verilog.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/netlist/verilog.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/CMakeFiles/reliaware.dir/spice/measure.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/spice/measure.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/CMakeFiles/reliaware.dir/spice/netlist.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/solver.cpp" "src/CMakeFiles/reliaware.dir/spice/solver.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/spice/solver.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/CMakeFiles/reliaware.dir/spice/waveform.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/spice/waveform.cpp.o.d"
  "/root/repo/src/sta/analysis.cpp" "src/CMakeFiles/reliaware.dir/sta/analysis.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/sta/analysis.cpp.o.d"
  "/root/repo/src/sta/graph.cpp" "src/CMakeFiles/reliaware.dir/sta/graph.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/sta/graph.cpp.o.d"
  "/root/repo/src/sta/guardband.cpp" "src/CMakeFiles/reliaware.dir/sta/guardband.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/sta/guardband.cpp.o.d"
  "/root/repo/src/sta/paths.cpp" "src/CMakeFiles/reliaware.dir/sta/paths.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/sta/paths.cpp.o.d"
  "/root/repo/src/synth/buffering.cpp" "src/CMakeFiles/reliaware.dir/synth/buffering.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/buffering.cpp.o.d"
  "/root/repo/src/synth/cuts.cpp" "src/CMakeFiles/reliaware.dir/synth/cuts.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/cuts.cpp.o.d"
  "/root/repo/src/synth/decompose.cpp" "src/CMakeFiles/reliaware.dir/synth/decompose.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/decompose.cpp.o.d"
  "/root/repo/src/synth/ir.cpp" "src/CMakeFiles/reliaware.dir/synth/ir.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/ir.cpp.o.d"
  "/root/repo/src/synth/mapper.cpp" "src/CMakeFiles/reliaware.dir/synth/mapper.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/mapper.cpp.o.d"
  "/root/repo/src/synth/sizing.cpp" "src/CMakeFiles/reliaware.dir/synth/sizing.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/sizing.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/CMakeFiles/reliaware.dir/synth/synthesizer.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/synth/synthesizer.cpp.o.d"
  "/root/repo/src/util/interp.cpp" "src/CMakeFiles/reliaware.dir/util/interp.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/util/interp.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/reliaware.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/reliaware.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/reliaware.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/reliaware.dir/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
