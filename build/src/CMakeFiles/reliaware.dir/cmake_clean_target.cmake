file(REMOVE_RECURSE
  "libreliaware.a"
)
