# Empty dependencies file for reliaware.
# This may be replaced when dependencies are built.
