# Empty compiler generated dependencies file for library_property_test.
# This may be replaced when dependencies are built.
