file(REMOVE_RECURSE
  "CMakeFiles/library_property_test.dir/library_property_test.cpp.o"
  "CMakeFiles/library_property_test.dir/library_property_test.cpp.o.d"
  "library_property_test"
  "library_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
