file(REMOVE_RECURSE
  "CMakeFiles/charlib_test.dir/charlib_test.cpp.o"
  "CMakeFiles/charlib_test.dir/charlib_test.cpp.o.d"
  "charlib_test"
  "charlib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
