# Empty compiler generated dependencies file for charlib_test.
# This may be replaced when dependencies are built.
