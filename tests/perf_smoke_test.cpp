#include <gtest/gtest.h>

#include "cells/catalog.hpp"
#include "charlib/characterizer.hpp"
#include "spice/stats.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {
namespace {

CharacterizeOptions coarse_options() {
  CharacterizeOptions o;
  o.grid = OpcGrid::coarse();
  return o;
}

TEST(PerfSmoke, WorkspaceIsReusedAcrossSolves) {
  // The structure-reusing solver: one symbolic analysis (ordering + fill)
  // per circuit topology, then in-place refactorization for every Newton
  // iteration of every timestep of every grid point. A 3×3 grid of INV_X1
  // runs thousands of solves over a handful of topologies.
  spice::reset_solver_counters();
  const liberty::Cell cell = characterize_cell(cells::find_cell("INV_X1"),
                                               aging::AgingScenario::worst_case(10),
                                               coarse_options());
  ASSERT_FALSE(cell.arcs.empty());

  const spice::SolverCounters c = spice::solver_counters();
  EXPECT_GT(c.factorizations, 0u);
  EXPECT_GT(c.workspace_builds, 0u);
  EXPECT_GT(c.workspace_reuses, 10u * c.workspace_builds)
      << "workspace cache is not being reused";
  // Static pivoting holds on healthy cell matrices; the dense fallback is
  // for pivot collapse only.
  EXPECT_EQ(c.dense_fallbacks, 0u);
}

TEST(PerfSmoke, WarmStartSeedsEveryGridPoint) {
  // Every transient on an arc is seeded from the arc's shared DC operating
  // point; the seed polish should succeed for all of them (hits, no misses)
  // on a healthy cell.
  spice::reset_solver_counters();
  (void)characterize_cell(cells::find_cell("NAND2_X1"), aging::AgingScenario::worst_case(10),
                          coarse_options());
  const spice::SolverCounters c = spice::solver_counters();
  EXPECT_GT(c.warm_start_hits, 0u);
  EXPECT_EQ(c.warm_start_misses, 0u);
}

TEST(PerfSmoke, TaskQueueIsOrderAndThreadIndependent) {
  // The flattened scheduler may run a cell's (arc × OPC) tasks in any order
  // on any thread; the assembled cell must be bitwise identical. Run the
  // queue backwards serially and compare against the pooled path.
  const auto& spec = cells::find_cell("NOR2_X1");
  const auto scenario = aging::AgingScenario::worst_case(10);
  const CharacterizeOptions options = coarse_options();

  CellCharJob backwards(spec, scenario, options);
  for (std::size_t t = backwards.task_count(); t-- > 0;) backwards.run_task(t);
  const liberty::Cell reversed = backwards.finish();

  util::set_shared_thread_count(4);
  const liberty::Cell pooled = characterize_cell(spec, scenario, options);
  util::set_shared_thread_count(0);

  ASSERT_EQ(reversed.arcs.size(), pooled.arcs.size());
  for (std::size_t i = 0; i < reversed.arcs.size(); ++i) {
    EXPECT_EQ(reversed.arcs[i].rise.delay_ps.values(), pooled.arcs[i].rise.delay_ps.values());
    EXPECT_EQ(reversed.arcs[i].fall.delay_ps.values(), pooled.arcs[i].fall.delay_ps.values());
    EXPECT_EQ(reversed.arcs[i].rise.out_slew_ps.values(),
              pooled.arcs[i].rise.out_slew_ps.values());
    EXPECT_EQ(reversed.arcs[i].fall.out_slew_ps.values(),
              pooled.arcs[i].fall.out_slew_ps.values());
  }
}

}  // namespace
}  // namespace rw::charlib
