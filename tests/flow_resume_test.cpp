/// Whole-pipeline crash/resume guarantees over the orchestrated
/// dynamic-workload guardband flow: SIGKILL (via fork) at every stage
/// boundary followed by RW_FLOW_RESUME-style resume must reproduce the
/// uninterrupted run bitwise, fully-checkpointed resumes must re-run zero
/// SPICE solves, orchestration disabled must equal orchestration enabled,
/// and a short fixed-seed chaos campaign must grade all-good.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>

#include "flow/cancel.hpp"
#include "flow/chaos.hpp"
#include "flow/guardband_flow.hpp"
#include "spice/fault.hpp"
#include "spice/solver.hpp"
#include "util/thread_pool.hpp"

namespace rw {
namespace {

namespace fs = std::filesystem;

spice::FaultInjector& injector() { return spice::FaultInjector::instance(); }

class FlowResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // fork() below must not race live pool threads.
    util::set_shared_thread_count(1);
    injector().disarm();
    spice::set_solve_watchdog_ms(0.0);
    flow::cancel_token().clear();
    dir_ = (fs::temp_directory_path() /
            ("rw_flow_resume_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    injector().disarm();
    spice::set_solve_watchdog_ms(0.0);
    flow::cancel_token().clear();
    util::set_shared_thread_count(0);
  }

  std::string dir_;
};

/// Signature of the uninterrupted orchestrated run, computed once per test
/// binary (characterization is the expensive part; every test compares
/// against the same bytes).
const std::string& reference_signature() {
  static const std::string signature = [] {
    const std::string ref_dir =
        (fs::temp_directory_path() /
         ("rw_flow_resume_ref_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(ref_dir);
    flow::OrchestratorOptions orch;
    orch.dir = ref_dir + "/flow";
    charlib::LibraryFactory factory(flow::chaos_factory_options());
    const std::string sig =
        flow::result_signature(flow::run_orchestrated_guardband(factory, orch));
    fs::remove_all(ref_dir);
    return sig;
  }();
  return signature;
}

TEST_F(FlowResumeTest, OrchestrationDisabledMatchesEnabledBitwise) {
  // The acceptance bar for the whole PR: with no flow directory the flows
  // must behave — bit for bit — as if the orchestrator did not exist.
  flow::OrchestratorOptions disabled;  // dir empty
  charlib::LibraryFactory factory(flow::chaos_factory_options());
  const flow::DynamicAgingResult plain =
      flow::run_orchestrated_guardband(factory, disabled);
  EXPECT_EQ(flow::result_signature(plain), reference_signature());
}

TEST_F(FlowResumeTest, SigkillAtEveryStageBoundaryThenResumeIsBitwiseIdentical) {
  // The dynamic flow has 4 checkpointed stages: fresh_library, simulate,
  // characterize, sta. Crash right after each one and resume.
  for (int kill_stage = 0; kill_stage < 4; ++kill_stage) {
    SCOPED_TRACE("kill_after_stage=" + std::to_string(kill_stage));
    const std::string flow_dir = dir_ + "/k" + std::to_string(kill_stage);

    flow::OrchestratorOptions child_orch;
    child_orch.dir = flow_dir;
    child_orch.kill_after_stage = kill_stage;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        charlib::LibraryFactory child_factory(flow::chaos_factory_options());
        (void)flow::run_orchestrated_guardband(child_factory, child_orch);
      } catch (...) {
      }
      _exit(7);  // only reached if the SIGKILL hook failed to fire
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
    ASSERT_TRUE(fs::exists(flow_dir + "/flow_manifest.json"));

    // Stages 0..2 are fresh_library/simulate/characterize; once all three
    // are checkpointed the resume needs no SPICE at all. Make any solve a
    // hard failure so the zero-recharacterization claim is load-bearing.
    const bool resume_needs_no_spice = kill_stage >= 2;
    if (resume_needs_no_spice) {
      injector().arm_fail_matching("", 0, spice::FaultInjector::Action::kFailConvergence);
    }
    flow::OrchestratorOptions resume_orch;
    resume_orch.dir = flow_dir;
    resume_orch.resume = true;
    charlib::LibraryFactory factory(flow::chaos_factory_options());
    const flow::DynamicAgingResult resumed =
        flow::run_orchestrated_guardband(factory, resume_orch);
    if (resume_needs_no_spice) {
      EXPECT_EQ(injector().observed_solves(), 0u)
          << "resume re-characterized despite completed checkpoints";
      injector().disarm();
    }
    EXPECT_EQ(flow::result_signature(resumed), reference_signature());
  }
}

TEST_F(FlowResumeTest, ResumedRunReportMarksCompletedStagesCached) {
  const std::string flow_dir = dir_ + "/flow";
  {
    flow::OrchestratorOptions orch;
    orch.dir = flow_dir;
    charlib::LibraryFactory factory(flow::chaos_factory_options());
    (void)flow::run_orchestrated_guardband(factory, orch);
  }
  // Everything is checkpointed: the resume must serve all 4 stages from
  // disk, and its run report must say so.
  std::ifstream report_in(flow_dir + "/run_report.json", std::ios::binary);
  ASSERT_TRUE(report_in.good());
  {
    flow::OrchestratorOptions orch;
    orch.dir = flow_dir;
    orch.resume = true;
    charlib::LibraryFactory factory(flow::chaos_factory_options());
    const flow::DynamicAgingResult resumed =
        flow::run_orchestrated_guardband(factory, orch);
    EXPECT_EQ(flow::result_signature(resumed), reference_signature());
  }
  std::ifstream in(flow_dir + "/run_report.json", std::ios::binary);
  const std::string report{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
  EXPECT_NE(report.find("\"cached\""), std::string::npos);
  EXPECT_EQ(report.find("\"failed\""), std::string::npos);
}

TEST_F(FlowResumeTest, ShortFixedSeedChaosCampaignGradesAllGood) {
  const flow::ChaosCampaignResult campaign =
      flow::run_chaos_campaign(1, 3, dir_ + "/campaign");
  int total = 0;
  for (const auto& [outcome, count] : campaign.histogram) {
    EXPECT_TRUE(outcome == "ok" || outcome == "failed_then_resumed")
        << outcome << " x" << count;
    total += count;
  }
  EXPECT_EQ(total, 3);
  ASSERT_EQ(campaign.trials.size(), 3u);
  EXPECT_TRUE(campaign.all_good);

  const std::string json = flow::campaign_json(campaign, 1);
  EXPECT_NE(json.find("\"all_good\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trials\":3"), std::string::npos);
}

TEST_F(FlowResumeTest, PlansAreDeterministicPerSeed) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const flow::ChaosPlan a = flow::plan_for_seed(seed);
    const flow::ChaosPlan b = flow::plan_for_seed(seed);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.nth, b.nth);
    EXPECT_EQ(a.times, b.times);
    EXPECT_EQ(a.kill_after_stage, b.kill_after_stage);
    EXPECT_GE(a.kill_after_stage, 0);
    EXPECT_LE(a.kill_after_stage, 3);
    EXPECT_GE(a.deadline_ms, 2);
  }
}

}  // namespace
}  // namespace rw
