#include <gtest/gtest.h>

#include <cmath>

#include "charlib/factory.hpp"
#include "netlist/builder.hpp"
#include "sta/analysis.hpp"
#include "sta/guardband.hpp"
#include "sta/paths.hpp"

namespace rw::sta {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "INV_X2", "NAND2_X1", "NOR2_X1", "XOR2_X1", "BUF_X2", "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}
const liberty::Library& fresh() { return factory().library(aging::AgingScenario::fresh()); }
const liberty::Library& aged() { return factory().library(aging::AgingScenario::worst_case(10)); }

/// in -> INV -> INV -> ... chain -> out
netlist::Module inv_chain(int n) {
  netlist::Module m("chain");
  netlist::NetId net = m.add_net("in");
  m.mark_input(net);
  netlist::NetlistBuilder b(m, fresh());
  for (int i = 0; i < n; ++i) net = b.gate("INV_X1", {net});
  m.mark_output(net);
  return m;
}

TEST(Sta, ChainDelayScalesWithLength) {
  // Once slews settle down the chain, per-stage delay is constant: the
  // 8->12 increment matches the 4->8 increment.
  const double d4 = Sta(inv_chain(4), fresh()).critical_delay_ps();
  const double d8 = Sta(inv_chain(8), fresh()).critical_delay_ps();
  const double d12 = Sta(inv_chain(12), fresh()).critical_delay_ps();
  EXPECT_GT(d4, 3.0);
  EXPECT_GT(d8, d4);
  const double inc1 = d8 - d4;
  const double inc2 = d12 - d8;
  EXPECT_NEAR(inc2, inc1, 0.3 * inc1);
}

TEST(Sta, ArrivalMatchesManualArcSum) {
  // Single inverter with one fanout: delay should equal the NLDM lookup at
  // the PI slew and computed load.
  netlist::Module m("one");
  const netlist::NetId in = m.add_net("in");
  m.mark_input(in);
  netlist::NetlistBuilder b(m, fresh());
  const netlist::NetId out = b.gate("INV_X1", {in});
  m.mark_output(out);

  StaOptions opt;
  const Sta sta(m, fresh(), opt);
  const liberty::Cell& inv = fresh().at("INV_X1");
  const double load = opt.po_load_ff + opt.wire_cap_per_fanout_ff;
  const double expect_rise =
      inv.arcs[0].rise.delay_ps.lookup(opt.input_slew_ps, load);
  EXPECT_NEAR(sta.timing(out).arrival_ps[0], expect_rise, 1e-9);
  EXPECT_NEAR(sta.load_ff(out), load, 1e-12);
}

TEST(Sta, WorstPathReconstructionConsistent) {
  const netlist::Module m = inv_chain(6);
  const Sta sta(m, fresh());
  const TimingPath path = worst_path(sta);
  ASSERT_FALSE(path.steps.empty());
  EXPECT_NEAR(path.delay_ps, sta.critical_delay_ps(), 1e-9);
  // Increments along the path sum to the endpoint arrival.
  double sum = 0.0;
  for (const auto& s : path.steps) sum += s.incr_ps;
  EXPECT_NEAR(sum, path.endpoint.arrival_ps, 1e-6);
  // Edges alternate through inverters.
  for (std::size_t i = 1; i < path.steps.size(); ++i) {
    EXPECT_NE(path.steps[i].out_rising, path.steps[i - 1].out_rising);
  }
}

TEST(Sta, FlopPathsStartAndEndCorrectly) {
  netlist::Module m("seq");
  const netlist::NetId in = m.add_net("in");
  m.mark_input(in);
  m.set_clock(m.add_net("clk"));
  netlist::NetlistBuilder b(m, fresh());
  const netlist::NetId q1 = b.flop("DFF_X1", in);
  netlist::NetId n = q1;
  for (int i = 0; i < 3; ++i) n = b.gate("INV_X1", {n});
  const netlist::NetId q2 = b.flop("DFF_X1", n);
  m.mark_output(q2);

  const Sta sta(m, fresh());
  // There must be a flop-D endpoint whose cost includes setup.
  bool found_flop_endpoint = false;
  for (const auto& ep : sta.endpoints()) {
    if (ep.is_flop_d) {
      found_flop_endpoint = true;
      EXPECT_GT(ep.setup_ps, 0.0);
    }
  }
  EXPECT_TRUE(found_flop_endpoint);
  // Critical path starts at a flop Q (CK->Q delay as first increment).
  const TimingPath path = worst_path(sta);
  EXPECT_LT(path.steps.front().instance, 0);
  EXPECT_GT(path.steps.front().incr_ps, 5.0);
}

TEST(Sta, SlackConsistentWithCriticalPath) {
  const netlist::Module m = inv_chain(5);
  const Sta sta(m, fresh());
  const TimingPath path = worst_path(sta);
  // Nets on the critical path have (near) zero slack; the PI has zero too.
  for (const auto& s : path.steps) {
    EXPECT_NEAR(sta.slack_ps(s.net), 0.0, 1e-6);
  }
}

TEST(Sta, NonUnateXorPropagatesBothEdges) {
  netlist::Module m("x");
  const netlist::NetId a = m.add_net("a");
  const netlist::NetId c = m.add_net("c");
  m.mark_input(a);
  m.mark_input(c);
  netlist::NetlistBuilder b(m, fresh());
  const netlist::NetId out = b.gate("XOR2_X1", {a, c});
  m.mark_output(out);
  const Sta sta(m, fresh());
  EXPECT_GT(sta.timing(out).arrival_ps[0], 0.0);
  EXPECT_GT(sta.timing(out).arrival_ps[1], 0.0);
}

TEST(Guardband, AgedChainNeedsPositiveGuardband) {
  const netlist::Module m = inv_chain(8);
  const GuardbandReport report = estimate_guardband(m, fresh(), aged());
  EXPECT_GT(report.guardband_ps(), 0.0);
  EXPECT_GT(report.guardband_pct(), 2.0);
  EXPECT_LT(report.guardband_pct(), 40.0);
  EXPECT_GT(report.fresh_freq_ghz(), report.aged_freq_ghz());
}

TEST(Paths, EvaluatePathUnderOtherLibrary) {
  const netlist::Module m = inv_chain(6);
  const Sta sta_fresh(m, fresh());
  const TimingPath path = worst_path(sta_fresh);
  // Evaluating the fresh-critical path under the fresh library reproduces
  // its delay; under the aged library it is slower.
  const double fresh_eval = evaluate_path_ps(m, fresh(), path, sta_fresh.options());
  EXPECT_NEAR(fresh_eval, path.delay_ps, 1.0);
  const double aged_eval = evaluate_path_ps(m, aged(), path, sta_fresh.options());
  EXPECT_GT(aged_eval, fresh_eval);
  // The true aged CP dominates the aged delay of the formerly-critical path.
  const Sta sta_aged(m, aged());
  EXPECT_GE(sta_aged.critical_delay_ps(), aged_eval - 1e-6);
}

TEST(Sta, CombinationalLoopDetected) {
  netlist::Module m("loop");
  const netlist::NetId a = m.add_net("a");
  const netlist::NetId x = m.add_net("x");
  const netlist::NetId y = m.add_net("y");
  m.mark_input(a);
  m.add_instance("g1", "NAND2_X1", {a, y}, x);
  m.add_instance("g2", "INV_X1", {x}, y);
  m.mark_output(y);
  EXPECT_THROW(Sta(m, fresh()), std::runtime_error);
}

// Parameterized property: for any chain length, aged CP >= fresh CP and the
// K worst endpoint paths are sorted by delay.
class StaChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(StaChainProperty, AgedNeverFaster) {
  const netlist::Module m = inv_chain(GetParam());
  const double f = Sta(m, fresh()).critical_delay_ps();
  const double a = Sta(m, aged()).critical_delay_ps();
  EXPECT_GE(a, f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, StaChainProperty, ::testing::Values(1, 2, 3, 5, 9, 16));

}  // namespace
}  // namespace rw::sta
