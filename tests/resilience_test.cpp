/// End-to-end tests of the fault-tolerance layer: the solver's convergence
/// retry ladder, OPC fallback interpolation with rw_fallback/LB006 marking,
/// the factory's run manifest (checkpoint/resume) and quarantine, all driven
/// deterministically by spice::FaultInjector.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "aging/scenario.hpp"
#include "cells/catalog.hpp"
#include "charlib/characterizer.hpp"
#include "charlib/factory.hpp"
#include "charlib/manifest.hpp"
#include "device/ptm45.hpp"
#include "liberty/library.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "lint/linter.hpp"
#include "spice/fault.hpp"
#include "spice/solver.hpp"
#include "util/thread_pool.hpp"

namespace rw {
namespace {

spice::FaultInjector& injector() { return spice::FaultInjector::instance(); }

/// Every test arms the process-wide injector; start and finish inert so a
/// failing test cannot poison its neighbors.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override { injector().disarm(); }
  void TearDown() override {
    injector().disarm();
    util::set_shared_thread_count(0);
  }
};

/// The spice_test inverter bench: VDD-sourced CMOS inverter with a rising
/// ramp on the input, 4 fF load on the output.
spice::Circuit inverter_bench(spice::NodeId& in, spice::NodeId& out) {
  const device::Technology& tech = device::ptm45();
  spice::Circuit c;
  const spice::NodeId vdd = c.add_node("vdd");
  in = c.add_node("in");
  out = c.add_node("out");
  c.add_source(vdd, spice::Pwl::dc(tech.vdd_v));
  c.add_source(in, spice::Pwl::ramp(50.0, 40.0, 0.0, tech.vdd_v));
  c.add_mosfet(device::Mosfet(tech.pmos, 0.8), in, out, vdd);
  c.add_mosfet(device::Mosfet(tech.nmos, 0.4), in, out, spice::kGround);
  c.add_capacitor(out, spice::kGround, 4.0);
  return c;
}

TEST_F(ResilienceTest, RetryLadderRecoversFromInjectedFailures) {
  spice::NodeId in = -1;
  spice::NodeId out = -1;
  const spice::Circuit c = inverter_bench(in, out);
  spice::TransientOptions opt;
  opt.t_stop_ps = 500.0;

  // Rungs 0 and 1 are forced to fail; rung 2 (gmin stepping) must run real
  // SPICE and still produce a correct switching waveform.
  injector().arm_fail_nth(1, 2);
  const auto result = spice::simulate_transient(c, opt, {out});
  EXPECT_EQ(injector().injected_failures(), 2u);
  EXPECT_EQ(injector().observed_solves(), 3u);
  EXPECT_NEAR(result.waveform(out).value(0), device::ptm45().vdd_v, 0.05);
  EXPECT_NEAR(result.waveform(out).back_value(), 0.0, 0.05);
}

TEST_F(ResilienceTest, NanResidualInjectionFailsSafelyAndNextRungRecovers) {
  spice::NodeId in = -1;
  spice::NodeId out = -1;
  const spice::Circuit c = inverter_bench(in, out);
  spice::TransientOptions opt;
  opt.t_stop_ps = 500.0;

  // The poisoned attempt must *fail* (never falsely converge on NaN) and the
  // ladder must then recover on a clean rung.
  injector().arm_fail_nth(1, 1, spice::FaultInjector::Action::kNanResidual);
  const auto result = spice::simulate_transient(c, opt, {out});
  EXPECT_EQ(injector().injected_failures(), 1u);
  EXPECT_GE(injector().observed_solves(), 2u);
  EXPECT_NEAR(result.waveform(out).back_value(), 0.0, 0.05);
}

TEST_F(ResilienceTest, ExhaustedLadderThrowsStructuredErrorWithHistory) {
  spice::NodeId in = -1;
  spice::NodeId out = -1;
  const spice::Circuit c = inverter_bench(in, out);
  spice::TransientOptions opt;
  opt.t_stop_ps = 500.0;
  opt.retry.max_retries = 2;

  injector().arm_fail_nth(1, 100);  // every rung fails
  try {
    (void)spice::simulate_transient(c, opt, {out});
    FAIL() << "exhausted ladder did not throw";
  } catch (const spice::SolverError& e) {
    EXPECT_EQ(e.stage(), "transient");
    EXPECT_NE(std::string(e.what()).find("retry ladder exhausted after 3 attempt(s)"),
              std::string::npos);
    ASSERT_EQ(e.attempts().size(), 3u);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(e.attempts()[static_cast<std::size_t>(k)].attempt, k);
      EXPECT_NE(e.attempts()[static_cast<std::size_t>(k)].outcome.find("fault injection"),
                std::string::npos);
    }
    // Rungs carry distinct effective settings (the relaxation is real).
    EXPECT_NE(e.attempts()[0].settings, e.attempts()[1].settings);
    EXPECT_NE(e.attempts()[1].settings, e.attempts()[2].settings);
  }
  EXPECT_EQ(injector().injected_failures(), 3u);
}

TEST_F(ResilienceTest, RetryPolicyReadsEnvKnob) {
  ASSERT_EQ(setenv("RW_CHAR_MAX_RETRIES", "5", 1), 0);
  EXPECT_EQ(spice::RetryPolicy::from_env().max_retries, 5);
  ASSERT_EQ(setenv("RW_CHAR_MAX_RETRIES", "0", 1), 0);
  EXPECT_EQ(spice::RetryPolicy::from_env().max_retries, 0);
  ASSERT_EQ(setenv("RW_CHAR_MAX_RETRIES", "banana", 1), 0);
  EXPECT_EQ(spice::RetryPolicy::from_env().max_retries, 3);  // unparsable -> default
  ASSERT_EQ(unsetenv("RW_CHAR_MAX_RETRIES"), 0);
  EXPECT_EQ(spice::RetryPolicy::from_env().max_retries, 3);
}

TEST_F(ResilienceTest, FallbackPointIsInterpolatedMarkedAndLinted) {
  // One OPC point of the INV rise sweep (slew row 0, load column 1 on the
  // 3x3 grid) fails through the whole ladder; the table entry must be the
  // linear load-axis interpolation of its converged neighbors and the cell
  // must carry the rw_fallback marker that LB006 warns about.
  charlib::CharacterizeOptions o;
  o.grid = charlib::OpcGrid::coarse();
  const auto scenario = aging::AgingScenario::fresh();
  injector().arm_fail_matching("cell=INV_X1 arc=A dir=rise opc=1 scenario=" + scenario.id());
  const auto cell = charlib::characterize_cell(cells::find_cell("INV_X1"), scenario, o);

  ASSERT_EQ(cell.fallbacks.size(), 1u);
  EXPECT_EQ(cell.fallbacks[0], (liberty::FallbackPoint{"A", true, 0, 1}));
  ASSERT_EQ(cell.arcs.size(), 1u);
  const auto& rise = cell.arcs[0].rise;
  const double w =
      (o.grid.loads_ff[1] - o.grid.loads_ff[0]) / (o.grid.loads_ff[2] - o.grid.loads_ff[0]);
  EXPECT_NEAR(rise.delay_ps.at(0, 1),
              rise.delay_ps.at(0, 0) + w * (rise.delay_ps.at(0, 2) - rise.delay_ps.at(0, 0)),
              1e-9);
  EXPECT_GT(rise.delay_ps.at(0, 1), rise.delay_ps.at(0, 0));
  EXPECT_LT(rise.delay_ps.at(0, 1), rise.delay_ps.at(0, 2));

  liberty::Library lib("aged_with_fallback");
  lib.add_cell(cell);
  lint::LintSubject subject;
  subject.library = &lib;
  const auto diags = lint::Linter::library_linter().run(subject);
  bool flagged = false;
  for (const auto& d : diags) {
    if (d.rule_id != lint::rules::kFallbackPoint) continue;
    flagged = true;
    EXPECT_EQ(d.severity, lint::Severity::kWarning);
    EXPECT_NE(d.location.find("INV_X1"), std::string::npos);
    EXPECT_NE(d.message.find("A:rise:(0,1)"), std::string::npos);
  }
  EXPECT_TRUE(flagged);
}

TEST_F(ResilienceTest, FallbackInterpolationIsDeterministicAcrossThreadCounts) {
  charlib::CharacterizeOptions o;
  o.grid = charlib::OpcGrid::coarse();
  const auto scenario = aging::AgingScenario::fresh();
  // Match-mode injection is stateless per solve, so the same points fail for
  // any thread count and the interpolated tables must be bitwise identical.
  injector().arm_fail_matching("cell=INV_X1 arc=A dir=rise opc=1 scenario=" + scenario.id());

  util::set_shared_thread_count(1);
  const auto serial = charlib::characterize_cell(cells::find_cell("INV_X1"), scenario, o);
  util::set_shared_thread_count(4);
  const auto parallel = charlib::characterize_cell(cells::find_cell("INV_X1"), scenario, o);

  ASSERT_EQ(serial.fallbacks, parallel.fallbacks);
  ASSERT_EQ(serial.arcs.size(), parallel.arcs.size());
  for (std::size_t a = 0; a < serial.arcs.size(); ++a) {
    EXPECT_EQ(serial.arcs[a].rise.delay_ps.values(), parallel.arcs[a].rise.delay_ps.values());
    EXPECT_EQ(serial.arcs[a].rise.out_slew_ps.values(),
              parallel.arcs[a].rise.out_slew_ps.values());
    EXPECT_EQ(serial.arcs[a].fall.delay_ps.values(), parallel.arcs[a].fall.delay_ps.values());
    EXPECT_EQ(serial.arcs[a].fall.out_slew_ps.values(),
              parallel.arcs[a].fall.out_slew_ps.values());
  }
}

TEST_F(ResilienceTest, ArcWithNoConvergedPointThrowsTaggedCharError) {
  charlib::CharacterizeOptions o;
  o.grid = charlib::OpcGrid::single(60.0, 4.0);
  injector().arm_fail_matching("cell=INV_X1 arc=A dir=rise");
  try {
    (void)charlib::characterize_cell(cells::find_cell("INV_X1"), aging::AgingScenario::fresh(),
                                     o);
    FAIL() << "fully failed arc did not throw";
  } catch (const charlib::CharError& e) {
    EXPECT_EQ(e.cell(), "INV_X1");
    EXPECT_NE(e.context().find("arc=A dir=rise"), std::string::npos);
    EXPECT_NE(e.context().find("scenario=fresh"), std::string::npos);
    const std::string what = e.what();
    EXPECT_NE(what.find("all 1 OPC points failed to converge"), std::string::npos);
    // The chain bottoms out in the solver's attempt history.
    EXPECT_NE(what.find("retry ladder exhausted"), std::string::npos);
  }
}

TEST_F(ResilienceTest, FactoryQuarantinesPermanentFailureAndMergedSurvives) {
  const std::string dir = std::filesystem::temp_directory_path() / "rw_resilience_cache";
  std::filesystem::remove_all(dir);
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::single(60.0, 4.0);
  opts.cache_dir = dir;
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  charlib::LibraryFactory factory(opts);

  injector().arm_fail_matching("cell=NAND2_X1");
  const aging::AgingScenario a{0.4, 0.6, 10.0, true};
  const aging::AgingScenario b{1.0, 1.0, 10.0, true};

  EXPECT_THROW((void)factory.cell("NAND2_X1", a), charlib::CharError);

  // A second request fails fast from the quarantine: no SPICE is re-run.
  const std::uint64_t observed_before = injector().observed_solves();
  try {
    (void)factory.cell("NAND2_X1", a);
    FAIL() << "quarantined pair did not fail fast";
  } catch (const charlib::CharError& e) {
    EXPECT_NE(e.context().find("quarantined"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("retry ladder exhausted"), std::string::npos);
  }
  EXPECT_EQ(injector().observed_solves(), observed_before);

  // merged() still builds: the quarantined (cell, corner) variants are
  // simply absent instead of poisoning the whole library.
  const auto merged = factory.merged({a, b});
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_NE(merged.find("INV_X1_0.40_0.60"), nullptr);
  EXPECT_NE(merged.find("INV_X1_1.00_1.00"), nullptr);
  EXPECT_EQ(merged.find("NAND2_X1_0.40_0.60"), nullptr);

  const auto bad = factory.quarantined();
  ASSERT_EQ(bad.size(), 2u);  // NAND2_X1 under both corners
  for (const auto& q : bad) {
    EXPECT_EQ(q.cell, "NAND2_X1");
    EXPECT_NE(q.error.find("retry ladder exhausted"), std::string::npos);
  }

  // The checkpoint on disk records both outcomes with the full error chain.
  const auto manifest = charlib::RunManifest::load(factory.manifest_path());
  const auto* failed = manifest.find(a.id(), "NAND2_X1");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->status, "failed");
  EXPECT_NE(failed->error.find("retry ladder exhausted"), std::string::npos);
  const auto* done = manifest.find(a.id(), "INV_X1");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->status, "done");
  EXPECT_TRUE(done->error.empty());
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, ManifestResumeSkipsSpiceAndHonorsQuarantine) {
  const std::string dir = std::filesystem::temp_directory_path() / "rw_resilience_resume";
  std::filesystem::remove_all(dir);
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::single(60.0, 4.0);
  opts.cache_dir = dir;
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  const auto fresh = aging::AgingScenario::fresh();

  // Phase 1: one cell succeeds, one fails permanently; then the "campaign"
  // dies (the factory goes away).
  double delay_first = 0.0;
  {
    charlib::LibraryFactory factory(opts);
    injector().arm_fail_matching("cell=NAND2_X1");
    delay_first = factory.cell("INV_X1", fresh).arcs[0].rise.delay_ps.at(0, 0);
    EXPECT_THROW((void)factory.cell("NAND2_X1", fresh), charlib::CharError);
  }

  // Phase 2: resume. Any SPICE solve would now be failed by the injector,
  // so a zero observed-solve count proves both cells are served without
  // re-characterization.
  opts.resume = true;
  charlib::LibraryFactory resumed(opts);
  EXPECT_EQ(resumed.resume(), 2u);  // idempotent reload: done + failed
  injector().arm_fail_matching("cell=");
  EXPECT_NEAR(resumed.cell("INV_X1", fresh).arcs[0].rise.delay_ps.at(0, 0), delay_first, 1e-3);
  try {
    (void)resumed.cell("NAND2_X1", fresh);
    FAIL() << "resumed quarantine did not fail fast";
  } catch (const charlib::CharError& e) {
    EXPECT_EQ(e.cell(), "NAND2_X1");
    EXPECT_NE(e.context().find("quarantined"), std::string::npos);
    // The error chain recorded in phase 1 survives the restart verbatim.
    EXPECT_NE(std::string(e.what()).find("retry ladder exhausted"), std::string::npos);
  }
  EXPECT_EQ(injector().observed_solves(), 0u);
  EXPECT_EQ(injector().injected_failures(), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, ConcurrentFactoryCallersAllReceiveTheFailure) {
  // Satellite of the in-flight dedup table: when the characterizing thread
  // fails, every waiter blocked on the same (scenario, cell) must receive
  // the exception instead of hanging or silently getting an empty cell.
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::single(60.0, 4.0);
  opts.cache_dir.clear();
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  charlib::LibraryFactory factory(opts);
  injector().arm_fail_matching("cell=NAND2_X1");

  std::vector<std::string> messages(6);
  std::vector<std::thread> threads;
  threads.reserve(messages.size());
  for (std::size_t t = 0; t < messages.size(); ++t) {
    threads.emplace_back([&factory, &messages, t] {
      try {
        (void)factory.cell("NAND2_X1", aging::AgingScenario::fresh());
      } catch (const charlib::CharError& e) {
        messages[t] = e.what();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < messages.size(); ++t) {
    // Waiters rethrow the in-flight job's error; late arrivals fail fast
    // from the quarantine. Both carry the full solver chain.
    EXPECT_NE(messages[t].find("NAND2_X1"), std::string::npos) << t;
    EXPECT_NE(messages[t].find("retry ladder exhausted"), std::string::npos) << t;
  }
}

TEST_F(ResilienceTest, FallbackMarkersSurviveMergedAndResumeBitIdentically) {
  // A cell whose characterization needed OPC fallback interpolation keeps its
  // rw_fallback markers through every downstream representation: the merged
  // λ-indexed library (renamed variant), a Liberty text round-trip of that
  // library, and a factory resume that re-parses the disk cache — all with
  // the exact same marker list. A sibling cell is quarantined in the same
  // campaign to prove the two failure paths stay independent.
  const std::string dir = std::filesystem::temp_directory_path() / "rw_resilience_fallback";
  std::filesystem::remove_all(dir);
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::coarse();
  opts.cache_dir = dir;
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  const aging::AgingScenario corner{0.4, 0.6, 10.0, true};

  std::vector<liberty::FallbackPoint> expected;
  {
    charlib::LibraryFactory factory(opts);
    injector().arm_fail_matching("cell=INV_X1 arc=A dir=rise opc=1");
    expected = factory.cell("INV_X1", corner).fallbacks;
    ASSERT_EQ(expected.size(), 1u);
    EXPECT_EQ(expected[0], (liberty::FallbackPoint{"A", true, 0, 1}));

    injector().arm_fail_matching("cell=NAND2_X1");
    EXPECT_THROW((void)factory.cell("NAND2_X1", corner), charlib::CharError);

    // merged(): the INV variant is renamed but keeps the markers verbatim;
    // the quarantined NAND2 variant is absent, not poisonous.
    const liberty::Library merged = factory.merged({corner});
    const auto* variant = merged.find("INV_X1_0.40_0.60");
    ASSERT_NE(variant, nullptr);
    EXPECT_EQ(variant->fallbacks, expected);
    EXPECT_EQ(merged.find("NAND2_X1_0.40_0.60"), nullptr);

    // Liberty text round-trip of the merged library: writer emits the
    // rw_fallback complex attribute, parser restores it bit-identically.
    const liberty::Library reparsed = liberty::parse_library(liberty::write_library(merged));
    EXPECT_EQ(reparsed.at("INV_X1_0.40_0.60").fallbacks, expected);
  }

  // Resume from the manifest: the cached INV Liberty file is re-parsed (no
  // SPICE runs — any solve would be failed by the catch-all injection) and
  // the markers survive into both cell() and a fresh merged().
  opts.resume = true;
  charlib::LibraryFactory resumed(opts);
  EXPECT_EQ(resumed.resume(), 2u);  // done INV + failed NAND2
  injector().arm_fail_matching("cell=");
  EXPECT_EQ(resumed.cell("INV_X1", corner).fallbacks, expected);
  const liberty::Library merged_again = resumed.merged({corner});
  const auto* variant = merged_again.find("INV_X1_0.40_0.60");
  ASSERT_NE(variant, nullptr);
  EXPECT_EQ(variant->fallbacks, expected);
  EXPECT_EQ(merged_again.find("NAND2_X1_0.40_0.60"), nullptr);
  EXPECT_EQ(injector().injected_failures(), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, DisarmedInjectorIsBitwiseNeutralAcrossThreadCounts) {
  // With no faults armed the resilience layer must be invisible: rung 0 runs
  // the caller's exact options, so results stay bitwise identical for any
  // thread count (the acceptance bar for shipping the ladder enabled).
  charlib::CharacterizeOptions o;
  o.grid = charlib::OpcGrid::single(60.0, 4.0);
  const auto scenario = aging::AgingScenario::worst_case(10);

  util::set_shared_thread_count(1);
  const auto serial = charlib::characterize_cell(cells::find_cell("NAND2_X1"), scenario, o);
  util::set_shared_thread_count(4);
  const auto parallel = charlib::characterize_cell(cells::find_cell("NAND2_X1"), scenario, o);

  EXPECT_TRUE(serial.fallbacks.empty());
  EXPECT_TRUE(parallel.fallbacks.empty());
  ASSERT_EQ(serial.arcs.size(), parallel.arcs.size());
  for (std::size_t a = 0; a < serial.arcs.size(); ++a) {
    EXPECT_EQ(serial.arcs[a].rise.delay_ps.values(), parallel.arcs[a].rise.delay_ps.values());
    EXPECT_EQ(serial.arcs[a].fall.delay_ps.values(), parallel.arcs[a].fall.delay_ps.values());
  }
}

}  // namespace
}  // namespace rw
