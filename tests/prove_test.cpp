#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "charlib/factory.hpp"
#include "charlib/interval_query.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/guardband_flow.hpp"
#include "flow/prove_flow.hpp"
#include "liberty/parser.hpp"
#include "lint/linter.hpp"
#include "netlist/annotate.hpp"
#include "netlist/builder.hpp"
#include "sta/analysis.hpp"
#include "sta/interval_sta.hpp"
#include "stress/analyzer.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rw {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "INV_X2", "NAND2_X1", "NAND2_X2", "NOR2_X1",
                     "AND2_X1", "XOR2_X1", "BUF_X2",  "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}

const liberty::Library& lib() { return factory().library(aging::AgingScenario::fresh()); }

// ------------------------------------------------------- bracket scenarios --

TEST(BracketScenarios, ExtremeQuantizedCornersInDeterministicOrder) {
  stress::InstanceBounds b;
  b.lambda_p = stress::Interval{0.32, 0.57};
  b.lambda_n = stress::Interval{0.43, 0.68};
  const auto corners = charlib::bracket_scenarios(b, 10.0);
  ASSERT_EQ(corners.size(), 4u);
  // λp low→high, λn varying fastest; endpoints quantized onto the 0.1 grid.
  EXPECT_DOUBLE_EQ(corners[0].lambda_p, 0.3);
  EXPECT_DOUBLE_EQ(corners[0].lambda_n, 0.4);
  EXPECT_DOUBLE_EQ(corners[1].lambda_p, 0.3);
  EXPECT_DOUBLE_EQ(corners[1].lambda_n, 0.7);
  EXPECT_DOUBLE_EQ(corners[2].lambda_p, 0.6);
  EXPECT_DOUBLE_EQ(corners[2].lambda_n, 0.4);
  EXPECT_DOUBLE_EQ(corners[3].lambda_p, 0.6);
  EXPECT_DOUBLE_EQ(corners[3].lambda_n, 0.7);
  for (const auto& c : corners) EXPECT_DOUBLE_EQ(c.years, 10.0);
}

TEST(BracketScenarios, PointBoundsCollapseToOneCorner) {
  stress::InstanceBounds b;
  b.lambda_p = stress::Interval::point(0.5);
  b.lambda_n = stress::Interval::point(0.5);
  const auto corners = charlib::bracket_scenarios(b, 10.0);
  ASSERT_EQ(corners.size(), 1u);
  EXPECT_DOUBLE_EQ(corners[0].lambda_p, 0.5);
  EXPECT_DOUBLE_EQ(corners[0].lambda_n, 0.5);
}

// --------------------------------------------------- scalar-collapse (edge) --

/// A small all-combinational design over the fixture cells; proven.lib holds
/// the λ-indexed corners of exactly these base cells.
netlist::Module fixture_module(const liberty::Library& fresh) {
  netlist::Module m("collapse");
  const auto a = m.add_net("a");
  const auto b_in = m.add_net("b");
  const auto c = m.add_net("c");
  m.mark_input(a);
  m.mark_input(b_in);
  m.mark_input(c);
  netlist::NetlistBuilder nb(m, fresh);
  const auto n1 = nb.gate("NAND2_X1", {a, b_in});
  const auto n2 = nb.gate("INV_X1", {n1});
  const auto n3 = nb.gate("AND2_X1", {n2, c});
  const auto y = nb.gate("INV_X1", {n3});
  m.mark_output(y);
  return m;
}

/// Zero-width λ intervals (a single bracketing corner per instance, no
/// interp markers) must collapse the interval STA to scalar STA *bitwise*:
/// identical arrivals, slews, and critical delay — not merely close.
TEST(ScalarCollapse, SingleCornerReproducesScalarStaBitwise) {
  const liberty::Library fresh =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/mini.lib");
  const liberty::Library aged =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/proven.lib");
  const netlist::Module m = fixture_module(fresh);

  // Scalar side: the same design annotated at the (1.0, 1.0) corner, timed
  // against the λ-indexed library directly.
  netlist::Module annotated = m;
  const std::vector<netlist::InstanceDuty> duties(annotated.instances().size(),
                                                  netlist::InstanceDuty{1.0, 1.0});
  netlist::annotate_with_duty_cycles(annotated, duties);
  const sta::Sta scalar(annotated, aged, {});

  // Interval side: one bracketing corner per instance — a point λ interval.
  std::vector<charlib::InstanceCorners> corners;
  for (const auto& inst : m.instances()) {
    charlib::InstanceCorners ic;
    ic.fresh = fresh.find(inst.cell);
    ASSERT_NE(ic.fresh, nullptr) << inst.cell;
    const liberty::Cell* corner = aged.find(annotated.instances()[corners.size()].cell);
    ASSERT_NE(corner, nullptr) << annotated.instances()[corners.size()].cell;
    ic.corners = {corner};
    corners.push_back(ic);
  }
  const sta::IntervalSta ista(m, fresh, corners, {});

  EXPECT_FALSE(ista.vacuous());
  for (int n = 0; n < m.net_count(); ++n) {
    const auto net = static_cast<netlist::NetId>(n);
    const sta::NetTiming& st = scalar.timing(net);
    const sta::NetIntervalTiming& it = ista.timing(net);
    for (int e = 0; e < 2; ++e) {
      EXPECT_EQ(it.arrival[e].lo, st.arrival_ps[e]) << "net " << n << " edge " << e;
      EXPECT_EQ(it.arrival[e].hi, st.arrival_ps[e]) << "net " << n << " edge " << e;
      EXPECT_EQ(it.slew[e].lo, st.slew_ps[e]) << "net " << n << " edge " << e;
      EXPECT_EQ(it.slew[e].hi, st.slew_ps[e]) << "net " << n << " edge " << e;
    }
  }
  const stress::RealInterval cp = ista.critical_interval_ps();
  EXPECT_EQ(cp.lo, scalar.critical_delay_ps());
  EXPECT_EQ(cp.hi, scalar.critical_delay_ps());
  ASSERT_EQ(ista.endpoints().size(), scalar.endpoints().size());
  for (std::size_t i = 0; i < ista.endpoints().size(); ++i) {
    EXPECT_EQ(ista.endpoints()[i].net, scalar.endpoints()[i].net) << i;
    EXPECT_EQ(ista.endpoints()[i].rising, scalar.endpoints()[i].rising) << i;
  }
}

/// A missing bracket corner — even with others resolved — must poison the
/// proof: a partial bracket does not bound the λ interval.
TEST(ScalarCollapse, PartialBracketIsVacuous) {
  const liberty::Library fresh =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/mini.lib");
  const liberty::Library aged =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/proven.lib");
  const netlist::Module m = fixture_module(fresh);

  std::vector<charlib::InstanceCorners> corners;
  for (const auto& inst : m.instances()) {
    charlib::InstanceCorners ic;
    ic.fresh = fresh.find(inst.cell);
    ic.corners = {aged.find(util::indexed_cell_name(inst.cell, 1.0, 1.0))};
    ASSERT_NE(ic.corners[0], nullptr);
    corners.push_back(ic);
  }
  corners[1].missing = 1;  // one unresolved corner on one instance
  const sta::IntervalSta ista(m, fresh, corners, {});
  EXPECT_TRUE(ista.vacuous());
  ASSERT_EQ(ista.vacuous_instances().size(), 1u);
  EXPECT_EQ(ista.vacuous_instances()[0], 1);
  EXPECT_TRUE(ista.summarize(0.0).vacuous);
}

// ---------------------------------------------------------------- PV rules --

std::vector<lint::Diagnostic> run_prove_rules(const netlist::Module& m,
                                              const sta::ProveSummary& summary) {
  lint::Linter linter;
  linter.add_rules(lint::prove_rules());
  lint::LintSubject subject;
  subject.module = &m;
  subject.prove = &summary;
  return linter.run(subject);
}

sta::ProveSummary base_summary() {
  sta::ProveSummary s;
  s.fresh_cp_ps = 100.0;
  s.aged_cp_ps = stress::RealInterval{110.0, 130.0};
  s.blame = {{"u7", "AND2_X1", "A", 12.0, 3.0}, {"u2", "INV_X1", "A", 5.0, 0.0}};
  return s;
}

TEST(ProveRules, CertifiedRunIsClean) {
  const liberty::Library fresh =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/mini.lib");
  const netlist::Module m = fixture_module(fresh);
  sta::ProveSummary s = base_summary();
  s.guardband_ps = 30.0;  // exactly the proven requirement
  s.width_budget_ps = 25.0;
  EXPECT_TRUE(run_prove_rules(m, s).empty());
}

TEST(ProveRules, Pv001RefutesAGuardbandBelowTheProvenBound) {
  const liberty::Library fresh =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/mini.lib");
  const netlist::Module m = fixture_module(fresh);
  sta::ProveSummary s = base_summary();
  s.guardband_ps = 20.0;  // proven requirement is 30
  const auto diags = run_prove_rules(m, s);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, lint::rules::kGuardbandUnsound);
  EXPECT_EQ(diags[0].severity, lint::Severity::kError);
  EXPECT_NE(diags[0].message.find("30.0000"), std::string::npos) << diags[0].message;
}

TEST(ProveRules, Pv002RanksBlameWhenTheIntervalExceedsTheBudget) {
  const liberty::Library fresh =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/mini.lib");
  const netlist::Module m = fixture_module(fresh);
  sta::ProveSummary s = base_summary();
  s.width_budget_ps = 10.0;  // width is 20
  const auto diags = run_prove_rules(m, s);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, lint::rules::kWideProofInterval);
  EXPECT_EQ(diags[0].severity, lint::Severity::kWarning);
  EXPECT_NE(diags[0].message.find("u7/A"), std::string::npos) << diags[0].message;
  EXPECT_NE(diags[0].message.find("interp 3.00"), std::string::npos) << diags[0].message;
}

TEST(ProveRules, Pv003SupersedesEverythingOnAVacuousProof) {
  const liberty::Library fresh =
      liberty::parse_library_file(RW_REPO_DIR "/examples/fixtures/mini.lib");
  const netlist::Module m = fixture_module(fresh);
  sta::ProveSummary s = base_summary();
  s.vacuous = true;
  s.vacuous_instances = {"u1", "u2", "u3", "u4", "u5", "u6", "u7"};
  s.guardband_ps = 0.0;      // would trip PV001...
  s.width_budget_ps = 1.0;   // ...and PV002, but PV003 invalidates both
  const auto diags = run_prove_rules(m, s);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, lint::rules::kVacuousProof);
  EXPECT_EQ(diags[0].severity, lint::Severity::kError);
  EXPECT_NE(diags[0].message.find("u5, +2 more"), std::string::npos) << diags[0].message;
}

// -------------------------------------------------------------- soundness --

/// The acceptance property: on every paper benchmark circuit, the aged
/// critical-path delay of every simulated workload lies inside the proven
/// interval — under the default [0, 1] input model AND a narrowed one — and
/// below the proven upper bound the guardband would be sized from.
TEST(ProveSoundness, SimulatedAgedDelayInsideProvenIntervalOnEveryBenchmark) {
  constexpr double kYears = 10.0;
  constexpr int kCycles = 300;
  constexpr double kEps = 1e-6;
  synth::SynthesisOptions opt;
  opt.multi_start = false;

  stress::AnalyzeOptions narrow;
  narrow.default_input = stress::Interval{0.1, 0.9};

  for (const auto& bc : circuits::benchmark_suite()) {
    const netlist::Module m = synth::synthesize(bc.build(), lib(), bc.name, opt).module;

    const auto proven = flow::proven_guardband(m, factory(), kYears);
    ASSERT_FALSE(proven.summary.vacuous) << bc.name;
    EXPECT_TRUE(proven.certified) << bc.name;
    EXPECT_GT(proven.candidate_corners, 0u) << bc.name;
    const stress::RealInterval iv = proven.summary.aged_cp_ps;
    EXPECT_GE(iv.hi, proven.summary.fresh_cp_ps) << bc.name;

    // Narrowing the input model can only tighten the proven interval.
    const auto proven_n = flow::proven_guardband(m, factory(), kYears, -1.0, narrow);
    ASSERT_FALSE(proven_n.summary.vacuous) << bc.name;
    const stress::RealInterval nv = proven_n.summary.aged_cp_ps;
    EXPECT_GE(nv.lo, iv.lo - kEps) << bc.name;
    EXPECT_LE(nv.hi, iv.hi + kEps) << bc.name;

    for (unsigned seed = 1; seed <= 3; ++seed) {
      util::Rng rng(seed);
      const flow::Stimulus stimulus = [&](logicsim::CycleSimulator& sim, int) {
        for (netlist::NetId pi : m.inputs()) {
          if (pi != m.clock()) sim.set_input(pi, rng.chance(0.5));
        }
      };
      const auto dyn = flow::dynamic_workload_guardband(m, factory(), stimulus, kCycles, kYears);
      // Inside the default-model interval...
      EXPECT_GE(dyn.report.aged_cp_ps, iv.lo - kEps) << bc.name << " seed " << seed;
      EXPECT_LE(dyn.report.aged_cp_ps, iv.hi + kEps) << bc.name << " seed " << seed;
      // ...and inside the narrowed one (duty ~0.5 workloads are admitted).
      EXPECT_GE(dyn.report.aged_cp_ps, nv.lo - kEps) << bc.name << " seed " << seed;
      EXPECT_LE(dyn.report.aged_cp_ps, nv.hi + kEps) << bc.name << " seed " << seed;
      // The proven upper bound dominates every measured dynamic guardband.
      EXPECT_LE(dyn.report.guardband_ps(),
                iv.hi - proven.summary.fresh_cp_ps + kEps)
          << bc.name << " seed " << seed;
    }
  }
}

// ------------------------------------------------------------------- CLI ----

std::string run_cli(const std::string& args, int& exit_code) {
  const std::string out_path = std::string(::testing::TempDir()) + "rwprove_out.txt";
  const std::string cmd = std::string(RWPROVE_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(out_path.c_str());
  return ss.str();
}

TEST(RwproveCli, OutputIsThreadCountInvariant) {
  const std::string fixture =
      "--fresh " RW_REPO_DIR "/examples/fixtures/mini.lib --lib " RW_REPO_DIR
      "/examples/fixtures/proven.lib " RW_REPO_DIR "/examples/fixtures/clean.v";
  int code1 = -1;
  int code2 = -1;
  int code8 = -1;
  const std::string one = run_cli("--threads 1 " + fixture, code1);
  const std::string two = run_cli("--threads 2 " + fixture, code2);
  const std::string many = run_cli("--threads 8 " + fixture, code8);
  EXPECT_EQ(code1, 0) << one;
  EXPECT_EQ(code2, 0) << two;
  EXPECT_EQ(code8, 0) << many;
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, many);
  EXPECT_NE(one.find("proven aged critical path"), std::string::npos);
}

TEST(RwproveCli, VacuousProofIsRefusedWithPv003) {
  int code = -1;
  const std::string out = run_cli("--format json --fresh " RW_REPO_DIR
                                  "/examples/fixtures/mini.lib --lib " RW_REPO_DIR
                                  "/examples/fixtures/merged.lib " RW_REPO_DIR
                                  "/examples/fixtures/clean.v",
                                  code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("\"PV003\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"vacuous\":true"), std::string::npos) << out;
}

TEST(RwproveCli, GuardbandCertificationGatesTheExitCode) {
  const std::string fixture =
      "--fresh " RW_REPO_DIR "/examples/fixtures/mini.lib --lib " RW_REPO_DIR
      "/examples/fixtures/proven.lib " RW_REPO_DIR "/examples/fixtures/clean.v";
  int code = -1;
  // Far above the proven requirement: certified.
  std::string out = run_cli("--guardband 1000 " + fixture, code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("CERTIFIED"), std::string::npos) << out;
  // Below it: refuted via PV001.
  out = run_cli("--guardband 1 " + fixture, code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("PV001"), std::string::npos) << out;
}

TEST(RwproveCli, UsageErrorsExitSixtyFour) {
  int code = -1;
  run_cli("--lib x.lib y.v", code);  // --fresh is required
  EXPECT_EQ(code, 64);
  run_cli("--step 0 --fresh x.lib --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
  run_cli("--guardband -3 --fresh x.lib --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
}

}  // namespace
}  // namespace rw
