#include <gtest/gtest.h>

#include "aging/bti.hpp"
#include "aging/scenario.hpp"

namespace rw::aging {
namespace {

TEST(BtiModel, NoStressNoDegradation) {
  const BtiModel m;
  const auto d = m.degrade(device::MosType::kPmos, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(d.delta_vth_v, 0.0);
  EXPECT_DOUBLE_EQ(d.mu_factor, 1.0);
  const auto d0 = m.degrade(device::MosType::kPmos, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(d0.delta_vth_v, 0.0);
  EXPECT_DOUBLE_EQ(d0.mu_factor, 1.0);
}

// Property sweep: ΔVth is monotone in both duty cycle and time; µ factor is
// monotone decreasing.
class BtiMonotonicity : public ::testing::TestWithParam<device::MosType> {};

TEST_P(BtiMonotonicity, VthMonotoneInLambda) {
  const BtiModel m;
  double prev = -1.0;
  for (double lambda = 0.0; lambda <= 1.0001; lambda += 0.1) {
    const double dv = m.delta_vth_v(GetParam(), lambda, 10.0);
    EXPECT_GE(dv, prev);
    prev = dv;
  }
}

TEST_P(BtiMonotonicity, VthMonotoneInTime) {
  const BtiModel m;
  double prev = -1.0;
  for (double years : {0.1, 0.5, 1.0, 3.0, 5.0, 10.0, 20.0}) {
    const double dv = m.delta_vth_v(GetParam(), 1.0, years);
    EXPECT_GT(dv, prev);
    prev = dv;
  }
}

TEST_P(BtiMonotonicity, MobilityFactorDecreasing) {
  const BtiModel m;
  double prev = 1.1;
  for (double years : {0.0, 1.0, 5.0, 10.0}) {
    const double mu = m.mu_factor(GetParam(), 1.0, years);
    EXPECT_LE(mu, prev);
    EXPECT_GT(mu, 0.0);
    EXPECT_LE(mu, 1.0);
    prev = mu;
  }
}

INSTANTIATE_TEST_SUITE_P(BothPolarities, BtiMonotonicity,
                         ::testing::Values(device::MosType::kNmos, device::MosType::kPmos));

TEST(BtiModel, NbtiStrongerThanPbti) {
  // High-k metal gate: NBTI (pMOS) dominates PBTI (nMOS) [paper ref. 6].
  const BtiModel m;
  EXPECT_GT(m.delta_vth_v(device::MosType::kPmos, 1.0, 10.0),
            m.delta_vth_v(device::MosType::kNmos, 1.0, 10.0));
}

TEST(BtiModel, CalibratedMagnitudes) {
  // 10-year worst-case NBTI at 45 nm: tens of mV and single-digit % µ loss.
  const BtiModel m;
  const auto d = m.degrade(device::MosType::kPmos, 1.0, 10.0);
  EXPECT_GT(d.delta_vth_v, 0.025);
  EXPECT_LT(d.delta_vth_v, 0.090);
  EXPECT_GT(d.mu_factor, 0.85);
  EXPECT_LT(d.mu_factor, 0.99);
}

TEST(BtiModel, VthOnlyModeDisablesMobility) {
  const BtiModel m;
  const auto d = m.degrade(device::MosType::kPmos, 1.0, 10.0, /*include_mobility=*/false);
  EXPECT_DOUBLE_EQ(d.mu_factor, 1.0);
  EXPECT_GT(d.delta_vth_v, 0.0);
}

TEST(BtiModel, SubLinearTimeKinetics) {
  // Reaction-diffusion: doubling the time must NOT double ΔN_IT (t^1/6).
  const BtiModel m;
  const double five = m.interface_traps_cm2(device::MosType::kPmos, 1.0, 5.0 * 3.15e7);
  const double ten = m.interface_traps_cm2(device::MosType::kPmos, 1.0, 10.0 * 3.15e7);
  EXPECT_LT(ten, 1.5 * five);
  EXPECT_GT(ten, five);
}

TEST(BtiModel, RejectsInvalidInputs) {
  const BtiModel m;
  EXPECT_THROW((void)m.degrade(device::MosType::kPmos, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)m.degrade(device::MosType::kPmos, 1.1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)m.degrade(device::MosType::kPmos, 0.5, -1.0), std::invalid_argument);
}

TEST(AgingScenario, PresetsAndIds) {
  EXPECT_TRUE(AgingScenario::fresh().is_fresh());
  EXPECT_EQ(AgingScenario::fresh().id(), "fresh");
  const auto w = AgingScenario::worst_case(10);
  EXPECT_DOUBLE_EQ(w.lambda_p, 1.0);
  EXPECT_DOUBLE_EQ(w.lambda_n, 1.0);
  EXPECT_EQ(w.id(), "L1.00_1.00_y10");
  auto v = w;
  v.include_mobility = false;
  EXPECT_NE(v.id(), w.id());
  const auto b = AgingScenario::balanced(1);
  EXPECT_DOUBLE_EQ(b.lambda_p, 0.5);
}

TEST(AgingScenario, QuantizeLambda) {
  EXPECT_DOUBLE_EQ(quantize_lambda(0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantize_lambda(1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantize_lambda(0.44), 0.4);
  EXPECT_DOUBLE_EQ(quantize_lambda(0.46), 0.5);
  EXPECT_DOUBLE_EQ(quantize_lambda(-0.2), 0.0);
  EXPECT_DOUBLE_EQ(quantize_lambda(1.7), 1.0);
}

}  // namespace
}  // namespace rw::aging
