#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"
#include "synth/decompose.hpp"
#include "util/rng.hpp"

namespace rw::circuits {
namespace {

using synth::Ir;
using synth::IrSimulator;

void set_word(IrSimulator& sim, const std::string& base, std::uint64_t value, int width) {
  for (int i = 0; i < width; ++i) {
    sim.set_input(base + std::to_string(i), ((value >> i) & 1ULL) != 0);
  }
}

std::uint64_t get_word(const IrSimulator& sim, const std::string& base, int width) {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    if (sim.output(base + std::to_string(i))) v |= 1ULL << i;
  }
  return v;
}

TEST(Arith, SubAndMulRandom) {
  Ir ir;
  const auto a = input_word(ir, "a", 8);
  const auto b = input_word(ir, "b", 8);
  output_word(ir, "d", sub(ir, a, b));
  output_word(ir, "p", mul(ir, a, b));
  IrSimulator sim(ir);
  util::Rng rng(17);
  for (int k = 0; k < 200; ++k) {
    const std::uint64_t av = rng.next_below(256);
    const std::uint64_t bv = rng.next_below(256);
    set_word(sim, "a", av, 8);
    set_word(sim, "b", bv, 8);
    sim.evaluate();
    EXPECT_EQ(get_word(sim, "d", 8), (av - bv) & 0xFFu);
    EXPECT_EQ(get_word(sim, "p", 16), av * bv);
  }
}

TEST(Arith, SignedMultiply) {
  Ir ir;
  const auto a = input_word(ir, "a", 8);
  const auto b = input_word(ir, "b", 8);
  output_word(ir, "p", mul_signed(ir, a, b));
  IrSimulator sim(ir);
  util::Rng rng(18);
  for (int k = 0; k < 200; ++k) {
    const int av = rng.uniform_int(-128, 127);
    const int bv = rng.uniform_int(-128, 127);
    set_word(sim, "a", static_cast<std::uint64_t>(av) & 0xFF, 8);
    set_word(sim, "b", static_cast<std::uint64_t>(bv) & 0xFF, 8);
    sim.evaluate();
    const auto got = static_cast<std::int32_t>(static_cast<std::uint32_t>(get_word(sim, "p", 16))
                                               << 16) >> 16;
    EXPECT_EQ(got, av * bv) << av << "*" << bv;
  }
}

TEST(Arith, ConstMultiplyCsd) {
  Ir ir;
  const auto a = input_word(ir, "a", 10);
  output_word(ir, "p", mul_const(ir, a, 473, 22));   // DCT c2
  output_word(ir, "n", mul_const(ir, a, -100, 22));  // negative factor
  IrSimulator sim(ir);
  util::Rng rng(19);
  for (int k = 0; k < 100; ++k) {
    const int av = rng.uniform_int(-512, 511);
    set_word(sim, "a", static_cast<std::uint64_t>(av) & 0x3FF, 10);
    sim.evaluate();
    const auto p = static_cast<std::int32_t>(static_cast<std::uint32_t>(get_word(sim, "p", 22))
                                             << 10) >> 10;
    const auto n = static_cast<std::int32_t>(static_cast<std::uint32_t>(get_word(sim, "n", 22))
                                             << 10) >> 10;
    EXPECT_EQ(p, 473 * av);
    EXPECT_EQ(n, -100 * av);
  }
}

TEST(Arith, BarrelShifter) {
  Ir ir;
  const auto a = input_word(ir, "a", 16);
  const auto sh = input_word(ir, "s", 4);
  output_word(ir, "l", barrel_shift(ir, a, sh, true));
  output_word(ir, "r", barrel_shift(ir, a, sh, false));
  IrSimulator sim(ir);
  util::Rng rng(20);
  for (int k = 0; k < 100; ++k) {
    const std::uint64_t av = rng.next_below(65536);
    const std::uint64_t sv = rng.next_below(16);
    set_word(sim, "a", av, 16);
    set_word(sim, "s", sv, 4);
    sim.evaluate();
    EXPECT_EQ(get_word(sim, "l", 16), (av << sv) & 0xFFFFu);
    EXPECT_EQ(get_word(sim, "r", 16), av >> sv);
  }
}

TEST(Dsp, MacAccumulates) {
  Ir ir = make_dsp();
  IrSimulator sim(ir);
  // Stream (a, b) pairs; accumulator lags by the pipeline depth.
  const int pairs[4][2] = {{3, 5}, {-2, 7}, {100, 100}, {-50, 3}};
  std::int64_t expect = 0;
  sim.set_input("clear", false);
  for (int k = 0; k < 10; ++k) {
    const int a = pairs[k % 4][0];
    const int b = pairs[k % 4][1];
    set_word(sim, "a", static_cast<std::uint64_t>(a) & 0xFFFF, 16);
    set_word(sim, "b", static_cast<std::uint64_t>(b) & 0xFFFF, 16);
    sim.step();
    if (k >= 2) expect += static_cast<std::int64_t>(pairs[(k - 2) % 4][0]) * pairs[(k - 2) % 4][1];
  }
  sim.evaluate();
  const auto acc = static_cast<std::int64_t>(static_cast<std::uint64_t>(get_word(sim, "acc", 32))
                                             << 32) >> 32;
  EXPECT_EQ(acc, expect & 0xFFFFFFFFll ? acc : acc);  // acc wraps at 32 bits
  EXPECT_EQ(static_cast<std::uint32_t>(acc), static_cast<std::uint32_t>(expect));
}

TEST(Risc, AddiThroughPipeline) {
  // ADDI r1, r0, 5 -> after the pipeline drains, wb shows 5 (r0 starts 0).
  Ir ir = make_risc5();
  IrSimulator sim(ir);
  const auto encode = [](unsigned op, unsigned rd, unsigned rs1, unsigned rs2, unsigned imm) {
    return (op << 13) | (rd << 10) | (rs1 << 7) | (rs2 << 4) | imm;
  };
  const unsigned addi = encode(7, 1, 0, 0, 5);
  const unsigned nop = encode(0, 0, 0, 0, 0);  // ADD r0 = r0 + r0
  std::uint64_t last_wb = 0;
  for (int k = 0; k < 12; ++k) {
    set_word(sim, "instr", k == 0 ? addi : nop, 16);
    sim.step();
    sim.evaluate();
    last_wb = get_word(sim, "wb", 16);
    if (last_wb == 5) break;
  }
  EXPECT_EQ(last_wb, 5u);
}

TEST(Risc, ForwardingChain) {
  // r1 = 3; r2 = r1 + r1 (back-to-back, needs forwarding); observe wb = 6.
  Ir ir = make_risc5();
  IrSimulator sim(ir);
  const auto encode = [](unsigned op, unsigned rd, unsigned rs1, unsigned rs2, unsigned imm) {
    return (op << 13) | (rd << 10) | (rs1 << 7) | (rs2 << 4) | imm;
  };
  const std::vector<unsigned> program = {
      encode(7, 1, 0, 0, 3),  // ADDI r1, r0, 3
      encode(0, 2, 1, 1, 0),  // ADD  r2, r1, r1
  };
  bool saw_six = false;
  for (int k = 0; k < 14; ++k) {
    const unsigned instr = k < static_cast<int>(program.size()) ? program[static_cast<std::size_t>(k)]
                                                                : encode(0, 0, 0, 0, 0);
    set_word(sim, "instr", instr, 16);
    sim.step();
    sim.evaluate();
    if (get_word(sim, "wb", 16) == 6) saw_six = true;
  }
  EXPECT_TRUE(saw_six);
}

TEST(Vliw, DualIssueWrites) {
  Ir ir = make_vliw();
  IrSimulator sim(ir);
  const auto slot = [](unsigned op, unsigned rd, unsigned rs1, unsigned imm4) {
    return (op << 10) | (rd << 7) | (rs1 << 4) | imm4;
  };
  // Slot0: ADDI r1, r0, 7; Slot1: ADDI r2, r0, 4.
  const std::uint64_t bundle =
      slot(7, 1, 0, 7) | (static_cast<std::uint64_t>(slot(7, 2, 0, 4)) << 13);
  bool ok = false;
  for (int k = 0; k < 8; ++k) {
    set_word(sim, "instr", k == 0 ? bundle : 0, 26);
    sim.step();
    sim.evaluate();
    if (get_word(sim, "res0", 16) == 7 && get_word(sim, "res1", 16) == 4) ok = true;
  }
  EXPECT_TRUE(ok);
}

TEST(Dct, ReferenceMatchesFloatDct) {
  // The fixed-point reference must approximate the orthonormal float DCT.
  int in[8] = {-128, -100, -50, 0, 30, 80, 120, 127};
  int out[8];
  dct8_reference(in, out);
  for (int k = 0; k < 8; ++k) {
    double acc = 0.0;
    for (int n = 0; n < 8; ++n) {
      const double ck = k == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      acc += 0.5 * ck * in[n] * std::cos((2 * n + 1) * k * M_PI / 16.0);
    }
    EXPECT_NEAR(out[k], acc, 2.0) << "k=" << k;
  }
}

TEST(Dct, ForwardInverseRoundTrip) {
  int in[8] = {-100, -5, 3, 77, -128, 127, 0, 64};
  int coeffs[8];
  int back[8];
  dct8_reference(in, coeffs);
  idct8_reference(coeffs, back);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(back[i], in[i], 3) << i;
}

TEST(Dct, CircuitMatchesReferenceBitExact) {
  Ir ir = make_dct8();
  IrSimulator sim(ir);
  util::Rng rng(23);
  for (int vec = 0; vec < 40; ++vec) {
    int in[8];
    for (int i = 0; i < 8; ++i) {
      in[i] = rng.uniform_int(-400, 400);  // 12-bit signed operating range
      set_word(sim, "x" + std::to_string(i) + "_", static_cast<std::uint64_t>(in[i]) & 0xFFF, 12);
    }
    sim.step();  // input regs
    sim.step();  // output regs
    sim.evaluate();
    int want[8];
    dct8_reference(in, want);
    for (int k = 0; k < 8; ++k) {
      const auto raw = get_word(sim, "y" + std::to_string(k) + "_", 12);
      const auto got = static_cast<int>(static_cast<std::int32_t>(static_cast<std::uint32_t>(raw)
                                                                  << 20) >> 20);
      EXPECT_EQ(got, want[k]) << "vec " << vec << " k " << k;
    }
  }
}

TEST(Idct, CircuitMatchesReferenceBitExact) {
  Ir ir = make_idct8();
  IrSimulator sim(ir);
  util::Rng rng(24);
  for (int vec = 0; vec < 40; ++vec) {
    int in[8];
    for (int i = 0; i < 8; ++i) {
      in[i] = rng.uniform_int(-500, 500);
      set_word(sim, "y" + std::to_string(i) + "_", static_cast<std::uint64_t>(in[i]) & 0xFFF, 12);
    }
    sim.step();
    sim.step();
    sim.evaluate();
    int want[8];
    idct8_reference(in, want);
    for (int n = 0; n < 8; ++n) {
      const auto raw = get_word(sim, "x" + std::to_string(n) + "_", 12);
      const auto got = static_cast<int>(static_cast<std::int32_t>(static_cast<std::uint32_t>(raw)
                                                                  << 20) >> 20);
      EXPECT_EQ(got, want[n]) << "vec " << vec << " n " << n;
    }
  }
}

TEST(Suite, AllBenchmarksDecompose) {
  for (const auto& bc : benchmark_suite()) {
    const Ir ir = bc.build();
    ir.validate();
    const synth::SubjectGraph g = synth::decompose(ir);
    EXPECT_GT(g.nand_count(), 100u) << bc.name;  // industrial-ish sizes
    EXPECT_FALSE(g.pos.empty()) << bc.name;
  }
}

}  // namespace
}  // namespace rw::circuits
