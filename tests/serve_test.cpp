/// The characterization service: protocol codec round-trips, cross-process
/// lease-file semantics, the daemon's crash-only contract (worker SIGKILL,
/// lease-expiry stalls, daemon SIGKILL + restart, client-timeout dedup —
/// each via the seeded serve-chaos harness), graceful overload shedding,
/// SIGTERM drain, and the headline dedup guarantee: two forked clients
/// racing the same (scenario, cell) pair cost exactly one SPICE campaign
/// and read bitwise-identical libraries.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aging/scenario.hpp"
#include "charlib/factory.hpp"
#include "charlib/opc.hpp"
#include "flow/cancel.hpp"
#include "flow/chaos.hpp"
#include "flow/guardband_flow.hpp"
#include "flow/prove_flow.hpp"
#include "liberty/writer.hpp"
#include "netlist/verilog.hpp"
#include "serve/client.hpp"
#include "serve/gc.hpp"
#include "serve/ops.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"
#include "spice/stats.hpp"
#include "sta/guardband.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"
#include "util/proc_lease.hpp"
#include "util/thread_pool.hpp"

namespace rw {
namespace {

namespace fs = std::filesystem;

std::string unique_dir(const std::string& stem) {
  return std::string(::testing::TempDir()) + stem + "_" + std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Serve tests fork daemons and workers: the shared pool must be size 1 (a
/// child forked while pool threads hold locks would deadlock), and a dead
/// peer must surface as EPIPE, not SIGPIPE.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_shared_thread_count(1);
    util::io::ignore_sigpipe();
    flow::cancel_token().clear();
  }
  void TearDown() override {
    flow::cancel_token().clear();
    util::set_shared_thread_count(0);
  }
};

/// Rewinds a file's atime+mtime `seconds_ago` into the past (GC and lease
/// ages are measured from mtime, so tests fabricate idle time instead of
/// sleeping through it).
bool backdate(const std::string& path, double seconds_ago) {
  struct timespec times[2];
  times[0].tv_sec = ::time(nullptr) - static_cast<time_t>(seconds_ago);
  times[0].tv_nsec = 0;
  times[1] = times[0];
  return ::utimensat(AT_FDCWD, path.c_str(), times, 0) == 0;
}

double stat_value(const serve::Response& resp, const std::string& key) {
  for (const auto& [k, v] : resp.stats) {
    if (k == key) return v;
  }
  return 0.0;
}

/// Polls op=stats until `key` reaches `at_least` (daemon-side events like op
/// cancellation land asynchronously after the triggering socket close).
bool poll_stat_at_least(const serve::ClientOptions& copt, const std::string& key,
                        double at_least, int timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  int n = 0;
  for (;;) {
    serve::Request req;
    req.id = "teststat-" + std::to_string(::getpid()) + "-" + std::to_string(n++);
    req.op = "stats";
    try {
      serve::ServeClient client(copt);
      const serve::Response resp = client.request(req);
      if (resp.status == "ok" && stat_value(resp, key) >= at_least) return true;
    } catch (...) {
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    if (elapsed > timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

/// Verilog source of the same three-gate DUT chaos_test_module() builds —
/// what a served prove/guardband op parses server-side.
constexpr const char* kDutVerilog =
    "module chaos_dut (input a, input b, input ck, output q);\n"
    "  wire n1;\n"
    "  wire n2;\n"
    "  NAND2_X1 u1 (.A(a), .B(b), .Z(n1));\n"
    "  INV_X1 u2 (.A(n1), .Z(n2));\n"
    "  DFF_X1 r1 (.D(n2), .CK(ck), .Q(q));\n"
    "endmodule\n";

/// Forks a real daemon running Server::run() (same shape as the chaos
/// harness's private helper).
pid_t spawn_daemon(const serve::ServeOptions& options) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  flow::cancel_token().clear();
  flow::install_signal_handlers();  // SIGTERM must drain, as in the rwserved CLI
  int code = 2;
  try {
    serve::Server server(options);
    code = server.run();
  } catch (...) {
  }
  _exit(code);
}

serve::ServeOptions base_options(const std::string& work_dir, const std::string& socket_path) {
  serve::ServeOptions o;
  o.socket_path = socket_path;
  o.workers = 1;
  o.factory = flow::chaos_factory_options();
  o.factory.cache_dir = work_dir + "/cache";
  return o;
}

/// The reference text every served library must match, computed once (a
/// direct in-process LibraryFactory run; ~100 ms on the coarse grid).
const std::string& reference_library() {
  static const std::string text = flow::serve_reference_library();
  return text;
}

flow::ServeChaosPlan plan(const std::string& kind) {
  flow::ServeChaosPlan p;
  p.seed = 7777;  // fixed: these tests pin the kind, not the seed derivation
  p.kind = kind;
  p.after_dispatch = 1;
  p.workers = 2;
  if (kind == "hang") {
    // Lease escalation (x2 per redelivery) absorbs slow machines: under
    // TSan a clean coarse-grid characterization can itself outlast the
    // first lease, and must NOT end in quarantine.
    p.lease_ms = 300.0;
    p.hang_ms = 700.0;
  } else if (kind == "client_timeout") {
    p.lease_ms = 5000.0;
    p.hang_ms = 500.0;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Protocol codec

TEST(ServeProtocol, RequestRoundTripsThroughJson) {
  serve::Request req;
  req.id = "id with \"quotes\" and \\slashes\\";
  req.op = "merged";
  req.cell = "NAND2_X1";
  req.lambda_p = 0.125;
  req.lambda_n = 1.0 / 3.0;  // not representable in decimal: %.17g must hold it
  req.years = 10.0;
  req.include_mobility = false;
  req.corners = {{0.0, 1.0}, {0.5, 0.25}};

  serve::Request back;
  std::string error;
  ASSERT_TRUE(serve::parse_request(serve::to_json(req), back, error)) << error;
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.cell, req.cell);
  EXPECT_EQ(back.lambda_p, req.lambda_p);
  EXPECT_EQ(back.lambda_n, req.lambda_n);  // bitwise: %.17g round-trip
  EXPECT_EQ(back.years, req.years);
  EXPECT_EQ(back.include_mobility, req.include_mobility);
  ASSERT_EQ(back.corners.size(), 2u);
  EXPECT_EQ(back.corners[1][0], 0.5);
  EXPECT_EQ(back.corners[1][1], 0.25);
}

TEST(ServeProtocol, ResponseRoundTripsAndToleratesUnknownKeys) {
  serve::Response resp;
  resp.id = "r1";
  resp.status = "ok";
  resp.library = "library (x) {\n  line\n}\n";  // embedded newlines must escape
  resp.retry_after_ms = 250.0;
  resp.stats = {{"tasks_done", 3.0}, {"dispatches", 4.0}};

  serve::Response back;
  std::string error;
  ASSERT_TRUE(serve::parse_response(serve::to_json(resp), back, error)) << error;
  EXPECT_EQ(back.library, resp.library);
  EXPECT_EQ(back.retry_after_ms, 250.0);
  ASSERT_EQ(back.stats.size(), 2u);
  EXPECT_EQ(back.stats[0].first, "tasks_done");

  // Unknown keys (forward compatibility) are skipped, including nested ones.
  const std::string extended =
      "{\"id\":\"r2\",\"status\":\"ok\",\"future\":{\"nested\":[1,2,{\"x\":true}]},"
      "\"note\":\"hi\"}";
  serve::Response ext;
  ASSERT_TRUE(serve::parse_response(extended, ext, error)) << error;
  EXPECT_EQ(ext.id, "r2");
  EXPECT_EQ(ext.status, "ok");
}

TEST(ServeProtocol, MalformedLinesAreRejectedNotCrashed) {
  serve::Request req;
  std::string error;
  EXPECT_FALSE(serve::parse_request("", req, error));
  EXPECT_FALSE(serve::parse_request("not json", req, error));
  EXPECT_FALSE(serve::parse_request("{\"id\":", req, error));
  EXPECT_FALSE(serve::parse_request("{\"id\":\"unterminated", req, error));
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, WorkerFramesRoundTrip) {
  serve::WorkerTask task;
  task.task = "3x3/L0.50_0.50_y10/NAND2_X1";
  task.cell = "NAND2_X1";
  task.lambda_p = 0.5;
  task.lambda_n = 0.5;
  task.years = 10.0;
  task.hang_ms = 123.5;
  serve::WorkerTask task_back;
  std::string error;
  ASSERT_TRUE(serve::parse_worker_task(serve::to_json(task), task_back, error)) << error;
  EXPECT_EQ(task_back.task, task.task);
  EXPECT_EQ(task_back.hang_ms, 123.5);
  EXPECT_FALSE(task_back.exit_now);

  serve::WorkerReply reply;
  reply.task = task.task;
  reply.status = "failed";
  reply.error = "solver exhausted the retry ladder";
  reply.permanent = true;
  serve::WorkerReply reply_back;
  ASSERT_TRUE(serve::parse_worker_reply(serve::to_json(reply), reply_back, error)) << error;
  EXPECT_EQ(reply_back.status, "failed");
  EXPECT_TRUE(reply_back.permanent);
}

// ---------------------------------------------------------------------------
// Lease files (the cross-process dedup primitive)

TEST(ServeLease, AcquireContendReleaseAndStaleBreak) {
  const std::string dir = unique_dir("lease");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/cell.lib.lease";

  auto lease = util::FileLease::try_acquire(path, 60000.0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_FALSE(util::FileLease::try_acquire(path, 60000.0).has_value());  // held
  EXPECT_FALSE(util::break_lease_if_stale(path));  // we are alive; not stale
  lease->release();
  EXPECT_TRUE(util::FileLease::try_acquire(path, 60000.0).has_value());  // free again

  // A dead holder's lease is stale and breakable.
  std::ofstream(path) << "{\"pid\":999999999,\"ttl_ms\":60000}\n";
  const util::LeaseObservation obs = util::observe_lease(path);
  EXPECT_TRUE(obs.parsed);
  EXPECT_FALSE(obs.pid_alive);
  EXPECT_TRUE(util::lease_is_stale(obs));
  EXPECT_TRUE(util::break_lease_if_stale(path));
  EXPECT_FALSE(fs::exists(path));

  // A torn (unparsable) lease is stale by definition.
  std::ofstream(path) << "garbage";
  EXPECT_TRUE(util::lease_is_stale(util::observe_lease(path)));
}

TEST(ServeLease, AcquireCreatesMissingParentDirectories) {
  // Regression: the first lease under a scenario directory nobody has
  // published into yet (the cache creates dirs only on WRITE) used to fail
  // with ENOENT forever, wedging followers in the poll loop.
  const std::string dir = unique_dir("lease_parent");
  fs::remove_all(dir);
  const std::string path = dir + "/3x3/L0.50_0.50_y10/NAND2_X1.lib.lease";
  auto lease = util::FileLease::try_acquire(path, 60000.0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// Crash-only service contract, one seeded trial per failure mode. Each trial
// forks a REAL daemon, runs a real client, and grades bitwise identity
// against the direct-factory reference.

TEST_F(ServeTest, CleanTrialServesBitwiseIdenticalToDirectFactory) {
  const flow::ChaosTrialResult t =
      flow::run_serve_chaos_trial(plan("clean"), unique_dir("serve_clean"), reference_library());
  EXPECT_EQ(t.outcome, "ok") << t.detail;
}

TEST_F(ServeTest, WorkerSigkillIsReapedRespawnedAndRedelivered) {
  const flow::ChaosTrialResult t = flow::run_serve_chaos_trial(
      plan("kill_worker"), unique_dir("serve_kill_worker"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, StalledTaskExpiresItsLeaseAndIsRedelivered) {
  const flow::ChaosTrialResult t =
      flow::run_serve_chaos_trial(plan("hang"), unique_dir("serve_hang"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, DaemonSigkillRestartCompletesTheSameRequestId) {
  const flow::ChaosTrialResult t = flow::run_serve_chaos_trial(
      plan("kill_daemon"), unique_dir("serve_kill_daemon"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, ClientTimeoutResendsDedupInsteadOfRecomputing) {
  const flow::ChaosTrialResult t = flow::run_serve_chaos_trial(
      plan("client_timeout"), unique_dir("serve_client_timeout"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

// ---------------------------------------------------------------------------
// Overload + drain

TEST_F(ServeTest, OverloadShedsBoundedlyAndTheDaemonStaysResponsive) {
  const std::string dir = unique_dir("serve_overload");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_ovl_" + std::to_string(::getpid()) + ".sock";
  serve::ServeOptions options = base_options(dir, socket_path);
  options.queue_max = 1;        // a library request needs 3 tasks: always shed
  options.retry_after_ms = 20.0;  // keep the client's shed loop fast
  const pid_t daemon = spawn_daemon(options);
  ASSERT_GT(daemon, 0);

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 5000;
  copt.max_attempts = 2;

  serve::Request req;
  req.id = "overload-1";
  req.op = "library";
  req.lambda_p = 0.5;
  req.lambda_n = 0.5;
  req.years = 10.0;
  bool threw = false;
  try {
    serve::ServeClient client(copt);
    (void)client.request(req);
  } catch (const std::exception& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("overloaded"), std::string::npos) << e.what();
  }
  EXPECT_TRUE(threw);

  // Shedding is graceful: the daemon still answers control traffic.
  serve::Request ping;
  ping.id = "overload-ping";
  ping.op = "ping";
  serve::ServeClient client(copt);
  EXPECT_EQ(client.request(ping).status, "ok");

  serve::Request bye;
  bye.id = "overload-bye";
  bye.op = "shutdown";
  EXPECT_EQ(client.request(bye).status, "ok");
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::unlink(socket_path.c_str());
}

TEST_F(ServeTest, SigtermDrainsToExitZeroAndWritesTheReport) {
  const std::string dir = unique_dir("serve_drain");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_drn_" + std::to_string(::getpid()) + ".sock";
  serve::ServeOptions options = base_options(dir, socket_path);
  options.report_path = dir + "/report.json";
  const pid_t daemon = spawn_daemon(options);
  ASSERT_GT(daemon, 0);

  // Wait for the socket to answer, then deliver SIGTERM.
  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 5000;
  serve::Request ping;
  ping.id = "drain-ping";
  ping.op = "ping";
  {
    serve::ServeClient client(copt);
    ASSERT_EQ(client.request(ping).status, "ok");
  }
  ASSERT_EQ(::kill(daemon, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const std::string report = read_file(options.report_path);
  EXPECT_NE(report.find("\"status\": \"ok\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"requests\""), std::string::npos) << report;
  // The drain unlinked its socket.
  EXPECT_FALSE(fs::exists(socket_path));
}

// ---------------------------------------------------------------------------
// The headline guarantee: concurrent duplicate requests from two PROCESSES
// cost exactly one SPICE campaign, and both observers read identical bytes.

TEST_F(ServeTest, TwoForkedClientsSamePairRunExactlyOneSpiceCampaign) {
  const std::string dir = unique_dir("serve_dedup");
  fs::remove_all(dir);
  fs::create_directories(dir);

  charlib::LibraryFactory::Options opt = flow::chaos_factory_options();
  opt.cell_subset = {"NAND2_X1"};
  opt.cache_dir = dir + "/cache";
  opt.use_manifest = false;  // keep the two processes' bookkeeping independent
  const aging::AgingScenario scenario = flow::serve_chaos_scenario();

  // Reference: what one campaign costs (and produces) without any cache.
  spice::reset_solver_counters();
  std::string ref_text;
  {
    charlib::LibraryFactory::Options ref_opt = opt;
    ref_opt.cache_dir.clear();
    charlib::LibraryFactory ref(ref_opt);
    ref_text = liberty::write_library(ref.library(scenario));
  }
  const std::uint64_t ref_attempts = spice::solver_counters().transient_attempts;
  ASSERT_GT(ref_attempts, 0u);

  pid_t pids[2] = {-1, -1};
  for (int i = 0; i < 2; ++i) {
    pids[i] = fork();
    ASSERT_GE(pids[i], 0);
    if (pids[i] == 0) {
      spice::reset_solver_counters();
      try {
        charlib::LibraryFactory factory(opt);
        const std::string text = liberty::write_library(factory.library(scenario));
        util::write_file_atomic(dir + "/child" + std::to_string(i) + ".lib", text);
        util::write_file_atomic(
            dir + "/child" + std::to_string(i) + ".count",
            std::to_string(spice::solver_counters().transient_attempts));
        _exit(0);
      } catch (...) {
        _exit(3);
      }
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  const std::uint64_t c0 = std::stoull(read_file(dir + "/child0.count"));
  const std::uint64_t c1 = std::stoull(read_file(dir + "/child1.count"));
  // Exactly one campaign total: the loser waited on the winner's lease (or
  // found the published file) and solved NOTHING.
  EXPECT_EQ(c0 + c1, ref_attempts) << "c0=" << c0 << " c1=" << c1;
  EXPECT_EQ(std::min(c0, c1), 0u);

  // Both observers — and the cache-less reference — read identical bytes.
  const std::string t0 = read_file(dir + "/child0.lib");
  const std::string t1 = read_file(dir + "/child1.lib");
  ASSERT_FALSE(t0.empty());
  EXPECT_EQ(t0, t1);
  EXPECT_EQ(t0, ref_text);
}

// ---------------------------------------------------------------------------
// Client retry jitter: backoff is FULL jitter (uniform over [0, cap)), shed
// waits are EQUAL jitter (never before half the Retry-After hint). Pinned
// seeds make the spread assertable.

TEST(ServeClientJitter, BackoffIsFullJitterAndShedIsEqualJitter) {
  serve::ClientOptions opt;
  opt.backoff_base_ms = 100.0;
  opt.jitter_seed = 42;
  serve::ServeClient client(opt);

  const double cap = 100.0 * 4.0;  // attempt 3: base * 2^2
  double lo = cap;
  double hi = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double d = client.backoff_delay_ms(3);
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, cap);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // 64 uniform draws span the range (each bound fails with p = (3/4)^64).
  EXPECT_LT(lo, 0.25 * cap);
  EXPECT_GT(hi, 0.75 * cap);

  // The exponent clamps at 2^10: a long outage cannot overflow the cap.
  EXPECT_LT(client.backoff_delay_ms(40), 100.0 * 1024.0);

  // Shed delays honor at least half the daemon's hint, never the full hint.
  for (int i = 0; i < 64; ++i) {
    const double d = client.shed_delay_ms(200.0);
    ASSERT_GE(d, 100.0);
    ASSERT_LT(d, 200.0);
  }
  // A zero/absent hint falls back to 100 ms worth of politeness.
  const double fallback = client.shed_delay_ms(0.0);
  EXPECT_GE(fallback, 50.0);
  EXPECT_LT(fallback, 100.0);
}

TEST(ServeClientJitter, SeedsPinAndDecorrelateTheDelaySequence) {
  const auto sample = [](std::uint64_t seed) {
    serve::ClientOptions opt;
    opt.jitter_seed = seed;
    serve::ServeClient client(opt);
    std::vector<double> out;
    for (int i = 0; i < 8; ++i) out.push_back(client.backoff_delay_ms(5));
    return out;
  };
  EXPECT_EQ(sample(1), sample(1));  // reproducible
  EXPECT_NE(sample(1), sample(2));  // decorrelated
}

// ---------------------------------------------------------------------------
// Lease edge cases: torn mid-write bodies, TTL expiry on a live-but-wedged
// holder, and a multi-process break-then-rendezvous race.

TEST(ServeLease, TornMidWriteBodyIsStaleAndAFreshLiveLeaseIsNot) {
  const std::string dir = unique_dir("lease_torn");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/cell.lib.lease";

  // A writer SIGKILLed mid-acquire leaves a prefix of the record; every
  // truncation point must read as stale, never as a live holder.
  for (const std::string body : {"{\"pid\":123", "{\"pid\":", "{", "{\"pid\":123,\"ttl_ms\":"}) {
    std::ofstream(path, std::ios::trunc) << body;
    const util::LeaseObservation obs = util::observe_lease(path);
    EXPECT_TRUE(obs.exists) << body;
    EXPECT_FALSE(obs.parsed) << body;
    EXPECT_TRUE(util::lease_is_stale(obs)) << body;
  }
  ASSERT_EQ(::unlink(path.c_str()), 0);

  // A fresh lease held by a live process is not stale from any angle.
  auto lease = util::FileLease::try_acquire(path, 60000.0);
  ASSERT_TRUE(lease.has_value());
  const util::LeaseObservation live = util::observe_lease(path);
  EXPECT_TRUE(live.parsed);
  EXPECT_EQ(live.pid, ::getpid());
  EXPECT_TRUE(live.pid_alive);
  EXPECT_FALSE(util::lease_is_stale(live));
}

TEST(ServeLease, TtlExpiryMakesALiveHoldersLeaseStale) {
  // The wedged-leader case: the holder is alive (kill(pid,0) succeeds) but
  // its lease outlived the TTL — observers must be able to break it, or a
  // hung daemon would pin its (scenario, cell) forever.
  const std::string dir = unique_dir("lease_ttl");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/cell.lib.lease";

  auto lease = util::FileLease::try_acquire(path, 1000.0);
  ASSERT_TRUE(lease.has_value());
  ASSERT_TRUE(backdate(path, 10.0));  // 10 s idle vs a 1 s TTL

  const util::LeaseObservation obs = util::observe_lease(path);
  EXPECT_TRUE(obs.parsed);
  EXPECT_TRUE(obs.pid_alive);           // we ARE alive...
  EXPECT_GT(obs.age_ms, obs.ttl_ms);    // ...but long past the deadline
  EXPECT_TRUE(util::lease_is_stale(obs));
  EXPECT_TRUE(util::break_lease_if_stale(path));
  EXPECT_FALSE(fs::exists(path));
  lease->release();  // idempotent: the file is already gone
}

TEST_F(ServeTest, ThreeProcessesBreakAStaleLeaseOnceAndAllRendezvous) {
  const std::string dir = unique_dir("lease_race");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/cell.lib.lease";
  // Crash debris: a dead holder's lease (pid far above pid_max).
  std::ofstream(path) << "{\"pid\":999999999,\"ttl_ms\":60000}\n";

  pid_t pids[3] = {-1, -1, -1};
  for (int i = 0; i < 3; ++i) {
    pids[i] = fork();
    ASSERT_GE(pids[i], 0);
    if (pids[i] == 0) {
      bool broke = false;
      for (int iter = 0; iter < 4000; ++iter) {
        if (util::break_lease_if_stale(path)) broke = true;
        if (auto lease = util::FileLease::try_acquire(path, 60000.0)) {
          // unlink() is atomic, so at most one contender's break succeeded;
          // everyone else acquires only after the current holder releases.
          if (broke) std::ofstream(dir + "/broke_" + std::to_string(i)) << i;
          std::ofstream(dir + "/acq_" + std::to_string(i)) << i;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          lease->release();
          _exit(0);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      _exit(3);  // never acquired: the race wedged
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  int broke_count = 0;
  int acq_count = 0;
  for (int i = 0; i < 3; ++i) {
    broke_count += fs::exists(dir + "/broke_" + std::to_string(i)) ? 1 : 0;
    acq_count += fs::exists(dir + "/acq_" + std::to_string(i)) ? 1 : 0;
  }
  EXPECT_EQ(broke_count, 1);  // exactly one contender removed the stale file
  EXPECT_EQ(acq_count, 3);    // and every contender eventually held the lease
}

// ---------------------------------------------------------------------------
// The fleet work spool: one file is both a WorkerTask document and a lease.

TEST(ServeSpool, RecordRoundTripsAndDoublesAsALease) {
  const std::string dir = unique_dir("spool_rt");
  fs::remove_all(dir);
  const std::string sd = serve::spool_dir(dir + "/3x3");

  serve::WorkerTask wt;
  wt.task = "L0.50_0.50_y10/NAND2_X1";
  wt.cell = "NAND2_X1";
  wt.lambda_p = 0.5;
  wt.lambda_n = 0.5;
  wt.years = 10.0;
  const std::string path = serve::spool_path(sd, wt.task);
  ASSERT_TRUE(serve::write_spool_record(path, wt, 1234.0));

  serve::SpoolRecord rec;
  ASSERT_TRUE(serve::read_spool_record(path, rec));
  EXPECT_EQ(rec.owner, ::getpid());
  EXPECT_EQ(rec.ttl_ms, 1234.0);
  EXPECT_EQ(rec.task.task, wt.task);
  EXPECT_EQ(rec.task.cell, wt.cell);
  EXPECT_EQ(rec.task.lambda_p, 0.5);
  EXPECT_EQ(rec.task.years, 10.0);

  // The same bytes parse as a lease held by this (live) process.
  const util::LeaseObservation obs = util::observe_lease(path);
  EXPECT_TRUE(obs.parsed);
  EXPECT_EQ(obs.pid, ::getpid());
  EXPECT_TRUE(obs.pid_alive);
  EXPECT_EQ(obs.ttl_ms, 1234.0);
  EXPECT_FALSE(util::lease_is_stale(obs));

  const std::vector<std::string> tasks = serve::list_spool_tasks(sd);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0], path);
}

// ---------------------------------------------------------------------------
// GC sweeps: age out idle entries, never touch leased/spooled ones, complete
// interrupted evictions, and honor the livelock idle floor.

TEST(ServeGc, SweepEvictsIdleSkipsProtectedAndCompletesTombstones) {
  const std::string root = unique_dir("gc_sweep");
  fs::remove_all(root);
  const std::string scen = root + "/3x3/L0.50_0.50_y10";
  fs::create_directories(scen);
  const auto entry = [&](const std::string& cell) {
    const std::string lib = scen + "/" + cell + ".lib";
    std::ofstream(lib) << "library (" << cell << ") {}\n";
    std::ofstream(charlib::LibraryFactory::usage_stamp_path(lib)) << "\n";
    return lib;
  };

  // OLD: an hour idle — evicted. LEASED: equally idle but actively held.
  // RECENT: just published. TOMB: a sweep died between intent and unlink.
  // SPOOLED: queued on some daemon (possibly a dead one, pre-adoption).
  const std::string old_lib = entry("OLD");
  ASSERT_TRUE(backdate(old_lib, 3600.0));
  ASSERT_TRUE(backdate(charlib::LibraryFactory::usage_stamp_path(old_lib), 3600.0));

  const std::string leased_lib = entry("LEASED");
  ASSERT_TRUE(backdate(leased_lib, 3600.0));
  ASSERT_TRUE(backdate(charlib::LibraryFactory::usage_stamp_path(leased_lib), 3600.0));
  auto lease = util::FileLease::try_acquire(leased_lib + ".lease", 600000.0);
  ASSERT_TRUE(lease.has_value());

  const std::string recent_lib = entry("RECENT");

  const std::string tomb_lib = entry("TOMB");
  std::ofstream(tomb_lib + ".tomb") << "{\"gc\":\"tombstone\"}\n";

  const std::string spooled_lib = entry("SPOOLED");
  ASSERT_TRUE(backdate(spooled_lib, 3600.0));
  ASSERT_TRUE(backdate(charlib::LibraryFactory::usage_stamp_path(spooled_lib), 3600.0));
  serve::WorkerTask wt;
  wt.task = "L0.50_0.50_y10/SPOOLED";
  wt.cell = "SPOOLED";
  wt.lambda_p = 0.5;
  wt.lambda_n = 0.5;
  wt.years = 10.0;
  ASSERT_TRUE(serve::write_spool_record(
      serve::spool_path(serve::spool_dir(root + "/3x3"), wt.task), wt, 60000.0));

  serve::GcOptions opt;
  opt.cache_dir = root;
  opt.max_age_ms = 1000.0;
  const serve::GcResult res = serve::gc_sweep(opt);

  EXPECT_EQ(res.evicted, 1u);
  EXPECT_EQ(res.skipped_leased, 1u);
  EXPECT_EQ(res.skipped_quarantined, 1u);  // the spooled pair
  EXPECT_EQ(res.skipped_recent, 1u);
  EXPECT_EQ(res.tombstones_completed, 1u);

  EXPECT_FALSE(fs::exists(old_lib));
  EXPECT_FALSE(fs::exists(charlib::LibraryFactory::usage_stamp_path(old_lib)));
  EXPECT_FALSE(fs::exists(old_lib + ".tomb"));  // eviction ran to completion
  EXPECT_TRUE(fs::exists(leased_lib));
  EXPECT_TRUE(fs::exists(recent_lib));
  EXPECT_FALSE(fs::exists(tomb_lib));           // interrupted sweep completed
  EXPECT_FALSE(fs::exists(tomb_lib + ".tomb"));
  EXPECT_TRUE(fs::exists(spooled_lib));
}

TEST(ServeGc, MinIdleFloorKeepsJustPublishedEntriesEvenAtMaxAgeZero) {
  // The livelock guard: an aggressive sweep cadence (max_age_ms=0, as the
  // fleet chaos campaign uses) must not evict entries a concurrent request
  // published moments ago, or GC and characterization chase each other
  // forever.
  const std::string root = unique_dir("gc_floor");
  fs::remove_all(root);
  const std::string scen = root + "/3x3/L0.50_0.50_y10";
  fs::create_directories(scen);
  const std::string lib = scen + "/INV_X1.lib";
  std::ofstream(lib) << "library (INV_X1) {}\n";
  std::ofstream(charlib::LibraryFactory::usage_stamp_path(lib)) << "\n";

  serve::GcOptions opt;
  opt.cache_dir = root;
  opt.max_age_ms = 0.0;
  const serve::GcResult res = serve::gc_sweep(opt);
  EXPECT_EQ(res.evicted, 0u);
  EXPECT_EQ(res.skipped_recent, 1u);
  EXPECT_TRUE(fs::exists(lib));
}

TEST(ServeGc, DryRunCountsWithoutDeleting) {
  const std::string root = unique_dir("gc_dry");
  fs::remove_all(root);
  const std::string scen = root + "/3x3/L0.50_0.50_y10";
  fs::create_directories(scen);
  const std::string lib = scen + "/INV_X1.lib";
  std::ofstream(lib) << "library (INV_X1) {}\n";
  ASSERT_TRUE(backdate(lib, 3600.0));

  serve::GcOptions opt;
  opt.cache_dir = root;
  opt.max_age_ms = 1000.0;
  opt.dry_run = true;
  const serve::GcResult res = serve::gc_sweep(opt);
  EXPECT_EQ(res.evicted, 1u);
  EXPECT_TRUE(fs::exists(lib));
  EXPECT_FALSE(fs::exists(lib + ".tomb"));
}

// ---------------------------------------------------------------------------
// Fleet trials, one per failure mode (the 20-seed campaign runs as the
// rwchaos_serve_fleet ctest entry; these pin one deterministic plan each).

TEST_F(ServeTest, FleetDaemonSigkillIsAdoptedByItsPeer) {
  flow::FleetChaosPlan p;
  p.seed = 4242;
  p.kind = "kill_daemon_mid_load";
  p.after_dispatch = 1;
  p.workers = 2;
  const flow::ChaosTrialResult t =
      flow::run_serve_fleet_trial(p, unique_dir("fleet_kill"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, FleetGcDuringCharacterizationNeverChangesTheBytes) {
  flow::FleetChaosPlan p;
  p.seed = 4243;
  p.kind = "gc_during_char";
  p.after_dispatch = 1;
  p.hang_ms = 900.0;
  p.workers = 2;
  const flow::ChaosTrialResult t =
      flow::run_serve_fleet_trial(p, unique_dir("fleet_gc"), reference_library());
  // "ok" means the (timing-dependent) eviction window was missed — the
  // bitwise-identity grading inside the trial still ran either way.
  EXPECT_TRUE(t.outcome == "failed_then_resumed" || t.outcome == "ok")
      << t.outcome << ": " << t.detail;
}

TEST_F(ServeTest, FleetWedgedDaemonsSpoolIsStolenByItsPeer) {
  flow::FleetChaosPlan p;
  p.seed = 4244;
  p.kind = "lease_steal";
  p.after_dispatch = 1;
  p.hang_ms = 2000.0;
  p.workers = 1;
  const flow::ChaosTrialResult t =
      flow::run_serve_fleet_trial(p, unique_dir("fleet_steal"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

// ---------------------------------------------------------------------------
// Served ops: prove/guardband run server-side in a forked op runner and must
// reproduce the direct in-process pipelines bitwise; cancellation is client
// disconnect or deadline expiry, both SIGKILL on the runner.

TEST_F(ServeTest, ServedProveMatchesTheDirectPipelineBitwise) {
  const std::string dir = unique_dir("serve_prove");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_prv_" + std::to_string(::getpid()) + ".sock";
  const pid_t daemon = spawn_daemon(base_options(dir, socket_path));
  ASSERT_GT(daemon, 0);

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 120000;
  serve::Request req;
  req.id = "prove-1";
  req.op = "prove";
  req.years = 10.0;
  req.netlist = kDutVerilog;
  serve::ServeClient client(copt);
  const serve::Response resp = client.request(req);
  ASSERT_EQ(resp.status, "ok") << resp.error;
  ASSERT_FALSE(resp.result.empty());

  // Direct run of the same pipeline, no cache anywhere (a cold-cache op
  // runner keeps its in-memory full-precision tables, so the payloads must
  // agree to the last %.17g digit).
  charlib::LibraryFactory factory(flow::chaos_factory_options());
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  const netlist::Module module = netlist::parse_verilog(kDutVerilog, fresh);
  const flow::ProvenGuardbandResult direct = flow::proven_guardband(module, factory, 10.0);
  EXPECT_EQ(resp.result, serve::prove_payload(direct));

  serve::Request bye;
  bye.id = "prove-bye";
  bye.op = "shutdown";
  EXPECT_EQ(client.request(bye).status, "ok");
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::unlink(socket_path.c_str());
}

TEST_F(ServeTest, ServedGuardbandMatchesTheDirectPipelineBitwise) {
  const std::string dir = unique_dir("serve_gb");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_gb_" + std::to_string(::getpid()) + ".sock";
  const pid_t daemon = spawn_daemon(base_options(dir, socket_path));
  ASSERT_GT(daemon, 0);

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 120000;
  serve::Request req;
  req.id = "gb-1";
  req.op = "guardband";
  req.lambda_p = 0.5;
  req.lambda_n = 0.5;
  req.years = 10.0;
  req.netlist = kDutVerilog;
  serve::ServeClient client(copt);
  const serve::Response resp = client.request(req);
  ASSERT_EQ(resp.status, "ok") << resp.error;
  ASSERT_FALSE(resp.result.empty());

  charlib::LibraryFactory factory(flow::chaos_factory_options());
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  const netlist::Module module = netlist::parse_verilog(kDutVerilog, fresh);
  const sta::GuardbandReport direct =
      flow::static_guardband(module, factory, flow::serve_chaos_scenario());
  EXPECT_EQ(resp.result, serve::guardband_payload(direct));

  serve::Request bye;
  bye.id = "gb-bye";
  bye.op = "shutdown";
  EXPECT_EQ(client.request(bye).status, "ok");
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::unlink(socket_path.c_str());
}

TEST_F(ServeTest, ClientDisconnectCancelsTheOpRunner) {
  const std::string dir = unique_dir("serve_opcancel");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_opc_" + std::to_string(::getpid()) + ".sock";
  const pid_t daemon = spawn_daemon(base_options(dir, socket_path));
  ASSERT_GT(daemon, 0);

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 10000;

  // Raw socket: send a prove op, confirm it was admitted, then vanish.
  int fd = -1;
  for (int i = 0; i < 200 && fd < 0; ++i) {
    fd = util::io::connect_unix(socket_path);
    if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_GE(fd, 0);
  serve::Request req;
  req.id = "opcancel-1";
  req.op = "prove";
  req.years = 10.0;
  req.netlist = kDutVerilog;
  ASSERT_TRUE(util::io::write_all(fd, serve::to_json(req) + "\n"));
  ASSERT_TRUE(poll_stat_at_least(copt, "ops_admitted", 1.0, 15000));
  ::close(fd);  // the only cancellation protocol there is

  EXPECT_TRUE(poll_stat_at_least(copt, "ops_cancelled", 1.0, 15000));

  serve::Request bye;
  bye.id = "opcancel-bye";
  bye.op = "shutdown";
  serve::ServeClient client(copt);
  EXPECT_EQ(client.request(bye).status, "ok");
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::unlink(socket_path.c_str());
}

TEST_F(ServeTest, OpDeadlineExpiryKillsTheRunnerAndAnswersAnError) {
  const std::string dir = unique_dir("serve_opdl");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_dl_" + std::to_string(::getpid()) + ".sock";
  const pid_t daemon = spawn_daemon(base_options(dir, socket_path));
  ASSERT_GT(daemon, 0);

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 60000;
  serve::Request req;
  req.id = "opdl-1";
  req.op = "prove";
  req.years = 10.0;
  req.netlist = kDutVerilog;
  req.deadline_ms = 1.0;  // a real prove takes ~seconds: always expires
  serve::ServeClient client(copt);
  const serve::Response resp = client.request(req);
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.error.find("deadline"), std::string::npos) << resp.error;

  // The new fleet/op/GC counters ride the same stats surface.
  serve::Request stats_req;
  stats_req.id = "opdl-stats";
  stats_req.op = "stats";
  const serve::Response stats = client.request(stats_req);
  ASSERT_EQ(stats.status, "ok");
  EXPECT_GE(stat_value(stats, "ops_expired"), 1.0);
  for (const char* key : {"tasks_spooled", "tasks_adopted", "tasks_stolen", "ops_admitted",
                          "ops_cancelled", "gc_sweeps", "gc_evicted"}) {
    bool found = false;
    for (const auto& [k, v] : stats.stats) found = found || k == key;
    EXPECT_TRUE(found) << key << " missing from op=stats";
  }

  serve::Request bye;
  bye.id = "opdl-bye";
  bye.op = "shutdown";
  EXPECT_EQ(client.request(bye).status, "ok");
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::unlink(socket_path.c_str());
}

}  // namespace
}  // namespace rw
