/// The characterization service: protocol codec round-trips, cross-process
/// lease-file semantics, the daemon's crash-only contract (worker SIGKILL,
/// lease-expiry stalls, daemon SIGKILL + restart, client-timeout dedup —
/// each via the seeded serve-chaos harness), graceful overload shedding,
/// SIGTERM drain, and the headline dedup guarantee: two forked clients
/// racing the same (scenario, cell) pair cost exactly one SPICE campaign
/// and read bitwise-identical libraries.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "aging/scenario.hpp"
#include "charlib/factory.hpp"
#include "charlib/opc.hpp"
#include "flow/cancel.hpp"
#include "flow/chaos.hpp"
#include "liberty/writer.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "spice/stats.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"
#include "util/proc_lease.hpp"
#include "util/thread_pool.hpp"

namespace rw {
namespace {

namespace fs = std::filesystem;

std::string unique_dir(const std::string& stem) {
  return std::string(::testing::TempDir()) + stem + "_" + std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Serve tests fork daemons and workers: the shared pool must be size 1 (a
/// child forked while pool threads hold locks would deadlock), and a dead
/// peer must surface as EPIPE, not SIGPIPE.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_shared_thread_count(1);
    util::io::ignore_sigpipe();
    flow::cancel_token().clear();
  }
  void TearDown() override {
    flow::cancel_token().clear();
    util::set_shared_thread_count(0);
  }
};

/// Forks a real daemon running Server::run() (same shape as the chaos
/// harness's private helper).
pid_t spawn_daemon(const serve::ServeOptions& options) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  flow::cancel_token().clear();
  flow::install_signal_handlers();  // SIGTERM must drain, as in the rwserved CLI
  int code = 2;
  try {
    serve::Server server(options);
    code = server.run();
  } catch (...) {
  }
  _exit(code);
}

serve::ServeOptions base_options(const std::string& work_dir, const std::string& socket_path) {
  serve::ServeOptions o;
  o.socket_path = socket_path;
  o.workers = 1;
  o.factory = flow::chaos_factory_options();
  o.factory.cache_dir = work_dir + "/cache";
  return o;
}

/// The reference text every served library must match, computed once (a
/// direct in-process LibraryFactory run; ~100 ms on the coarse grid).
const std::string& reference_library() {
  static const std::string text = flow::serve_reference_library();
  return text;
}

flow::ServeChaosPlan plan(const std::string& kind) {
  flow::ServeChaosPlan p;
  p.seed = 7777;  // fixed: these tests pin the kind, not the seed derivation
  p.kind = kind;
  p.after_dispatch = 1;
  p.workers = 2;
  if (kind == "hang") {
    // Lease escalation (x2 per redelivery) absorbs slow machines: under
    // TSan a clean coarse-grid characterization can itself outlast the
    // first lease, and must NOT end in quarantine.
    p.lease_ms = 300.0;
    p.hang_ms = 700.0;
  } else if (kind == "client_timeout") {
    p.lease_ms = 5000.0;
    p.hang_ms = 500.0;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Protocol codec

TEST(ServeProtocol, RequestRoundTripsThroughJson) {
  serve::Request req;
  req.id = "id with \"quotes\" and \\slashes\\";
  req.op = "merged";
  req.cell = "NAND2_X1";
  req.lambda_p = 0.125;
  req.lambda_n = 1.0 / 3.0;  // not representable in decimal: %.17g must hold it
  req.years = 10.0;
  req.include_mobility = false;
  req.corners = {{0.0, 1.0}, {0.5, 0.25}};

  serve::Request back;
  std::string error;
  ASSERT_TRUE(serve::parse_request(serve::to_json(req), back, error)) << error;
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.cell, req.cell);
  EXPECT_EQ(back.lambda_p, req.lambda_p);
  EXPECT_EQ(back.lambda_n, req.lambda_n);  // bitwise: %.17g round-trip
  EXPECT_EQ(back.years, req.years);
  EXPECT_EQ(back.include_mobility, req.include_mobility);
  ASSERT_EQ(back.corners.size(), 2u);
  EXPECT_EQ(back.corners[1][0], 0.5);
  EXPECT_EQ(back.corners[1][1], 0.25);
}

TEST(ServeProtocol, ResponseRoundTripsAndToleratesUnknownKeys) {
  serve::Response resp;
  resp.id = "r1";
  resp.status = "ok";
  resp.library = "library (x) {\n  line\n}\n";  // embedded newlines must escape
  resp.retry_after_ms = 250.0;
  resp.stats = {{"tasks_done", 3.0}, {"dispatches", 4.0}};

  serve::Response back;
  std::string error;
  ASSERT_TRUE(serve::parse_response(serve::to_json(resp), back, error)) << error;
  EXPECT_EQ(back.library, resp.library);
  EXPECT_EQ(back.retry_after_ms, 250.0);
  ASSERT_EQ(back.stats.size(), 2u);
  EXPECT_EQ(back.stats[0].first, "tasks_done");

  // Unknown keys (forward compatibility) are skipped, including nested ones.
  const std::string extended =
      "{\"id\":\"r2\",\"status\":\"ok\",\"future\":{\"nested\":[1,2,{\"x\":true}]},"
      "\"note\":\"hi\"}";
  serve::Response ext;
  ASSERT_TRUE(serve::parse_response(extended, ext, error)) << error;
  EXPECT_EQ(ext.id, "r2");
  EXPECT_EQ(ext.status, "ok");
}

TEST(ServeProtocol, MalformedLinesAreRejectedNotCrashed) {
  serve::Request req;
  std::string error;
  EXPECT_FALSE(serve::parse_request("", req, error));
  EXPECT_FALSE(serve::parse_request("not json", req, error));
  EXPECT_FALSE(serve::parse_request("{\"id\":", req, error));
  EXPECT_FALSE(serve::parse_request("{\"id\":\"unterminated", req, error));
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, WorkerFramesRoundTrip) {
  serve::WorkerTask task;
  task.task = "3x3/L0.50_0.50_y10/NAND2_X1";
  task.cell = "NAND2_X1";
  task.lambda_p = 0.5;
  task.lambda_n = 0.5;
  task.years = 10.0;
  task.hang_ms = 123.5;
  serve::WorkerTask task_back;
  std::string error;
  ASSERT_TRUE(serve::parse_worker_task(serve::to_json(task), task_back, error)) << error;
  EXPECT_EQ(task_back.task, task.task);
  EXPECT_EQ(task_back.hang_ms, 123.5);
  EXPECT_FALSE(task_back.exit_now);

  serve::WorkerReply reply;
  reply.task = task.task;
  reply.status = "failed";
  reply.error = "solver exhausted the retry ladder";
  reply.permanent = true;
  serve::WorkerReply reply_back;
  ASSERT_TRUE(serve::parse_worker_reply(serve::to_json(reply), reply_back, error)) << error;
  EXPECT_EQ(reply_back.status, "failed");
  EXPECT_TRUE(reply_back.permanent);
}

// ---------------------------------------------------------------------------
// Lease files (the cross-process dedup primitive)

TEST(ServeLease, AcquireContendReleaseAndStaleBreak) {
  const std::string dir = unique_dir("lease");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/cell.lib.lease";

  auto lease = util::FileLease::try_acquire(path, 60000.0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_FALSE(util::FileLease::try_acquire(path, 60000.0).has_value());  // held
  EXPECT_FALSE(util::break_lease_if_stale(path));  // we are alive; not stale
  lease->release();
  EXPECT_TRUE(util::FileLease::try_acquire(path, 60000.0).has_value());  // free again

  // A dead holder's lease is stale and breakable.
  std::ofstream(path) << "{\"pid\":999999999,\"ttl_ms\":60000}\n";
  const util::LeaseObservation obs = util::observe_lease(path);
  EXPECT_TRUE(obs.parsed);
  EXPECT_FALSE(obs.pid_alive);
  EXPECT_TRUE(util::lease_is_stale(obs));
  EXPECT_TRUE(util::break_lease_if_stale(path));
  EXPECT_FALSE(fs::exists(path));

  // A torn (unparsable) lease is stale by definition.
  std::ofstream(path) << "garbage";
  EXPECT_TRUE(util::lease_is_stale(util::observe_lease(path)));
}

TEST(ServeLease, AcquireCreatesMissingParentDirectories) {
  // Regression: the first lease under a scenario directory nobody has
  // published into yet (the cache creates dirs only on WRITE) used to fail
  // with ENOENT forever, wedging followers in the poll loop.
  const std::string dir = unique_dir("lease_parent");
  fs::remove_all(dir);
  const std::string path = dir + "/3x3/L0.50_0.50_y10/NAND2_X1.lib.lease";
  auto lease = util::FileLease::try_acquire(path, 60000.0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// Crash-only service contract, one seeded trial per failure mode. Each trial
// forks a REAL daemon, runs a real client, and grades bitwise identity
// against the direct-factory reference.

TEST_F(ServeTest, CleanTrialServesBitwiseIdenticalToDirectFactory) {
  const flow::ChaosTrialResult t =
      flow::run_serve_chaos_trial(plan("clean"), unique_dir("serve_clean"), reference_library());
  EXPECT_EQ(t.outcome, "ok") << t.detail;
}

TEST_F(ServeTest, WorkerSigkillIsReapedRespawnedAndRedelivered) {
  const flow::ChaosTrialResult t = flow::run_serve_chaos_trial(
      plan("kill_worker"), unique_dir("serve_kill_worker"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, StalledTaskExpiresItsLeaseAndIsRedelivered) {
  const flow::ChaosTrialResult t =
      flow::run_serve_chaos_trial(plan("hang"), unique_dir("serve_hang"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, DaemonSigkillRestartCompletesTheSameRequestId) {
  const flow::ChaosTrialResult t = flow::run_serve_chaos_trial(
      plan("kill_daemon"), unique_dir("serve_kill_daemon"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

TEST_F(ServeTest, ClientTimeoutResendsDedupInsteadOfRecomputing) {
  const flow::ChaosTrialResult t = flow::run_serve_chaos_trial(
      plan("client_timeout"), unique_dir("serve_client_timeout"), reference_library());
  EXPECT_EQ(t.outcome, "failed_then_resumed") << t.detail;
}

// ---------------------------------------------------------------------------
// Overload + drain

TEST_F(ServeTest, OverloadShedsBoundedlyAndTheDaemonStaysResponsive) {
  const std::string dir = unique_dir("serve_overload");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_ovl_" + std::to_string(::getpid()) + ".sock";
  serve::ServeOptions options = base_options(dir, socket_path);
  options.queue_max = 1;        // a library request needs 3 tasks: always shed
  options.retry_after_ms = 20.0;  // keep the client's shed loop fast
  const pid_t daemon = spawn_daemon(options);
  ASSERT_GT(daemon, 0);

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 5000;
  copt.max_attempts = 2;

  serve::Request req;
  req.id = "overload-1";
  req.op = "library";
  req.lambda_p = 0.5;
  req.lambda_n = 0.5;
  req.years = 10.0;
  bool threw = false;
  try {
    serve::ServeClient client(copt);
    (void)client.request(req);
  } catch (const std::exception& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("overloaded"), std::string::npos) << e.what();
  }
  EXPECT_TRUE(threw);

  // Shedding is graceful: the daemon still answers control traffic.
  serve::Request ping;
  ping.id = "overload-ping";
  ping.op = "ping";
  serve::ServeClient client(copt);
  EXPECT_EQ(client.request(ping).status, "ok");

  serve::Request bye;
  bye.id = "overload-bye";
  bye.op = "shutdown";
  EXPECT_EQ(client.request(bye).status, "ok");
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::unlink(socket_path.c_str());
}

TEST_F(ServeTest, SigtermDrainsToExitZeroAndWritesTheReport) {
  const std::string dir = unique_dir("serve_drain");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path =
      "/tmp/rwservetest_drn_" + std::to_string(::getpid()) + ".sock";
  serve::ServeOptions options = base_options(dir, socket_path);
  options.report_path = dir + "/report.json";
  const pid_t daemon = spawn_daemon(options);
  ASSERT_GT(daemon, 0);

  // Wait for the socket to answer, then deliver SIGTERM.
  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 5000;
  serve::Request ping;
  ping.id = "drain-ping";
  ping.op = "ping";
  {
    serve::ServeClient client(copt);
    ASSERT_EQ(client.request(ping).status, "ok");
  }
  ASSERT_EQ(::kill(daemon, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const std::string report = read_file(options.report_path);
  EXPECT_NE(report.find("\"status\": \"ok\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"requests\""), std::string::npos) << report;
  // The drain unlinked its socket.
  EXPECT_FALSE(fs::exists(socket_path));
}

// ---------------------------------------------------------------------------
// The headline guarantee: concurrent duplicate requests from two PROCESSES
// cost exactly one SPICE campaign, and both observers read identical bytes.

TEST_F(ServeTest, TwoForkedClientsSamePairRunExactlyOneSpiceCampaign) {
  const std::string dir = unique_dir("serve_dedup");
  fs::remove_all(dir);
  fs::create_directories(dir);

  charlib::LibraryFactory::Options opt = flow::chaos_factory_options();
  opt.cell_subset = {"NAND2_X1"};
  opt.cache_dir = dir + "/cache";
  opt.use_manifest = false;  // keep the two processes' bookkeeping independent
  const aging::AgingScenario scenario = flow::serve_chaos_scenario();

  // Reference: what one campaign costs (and produces) without any cache.
  spice::reset_solver_counters();
  std::string ref_text;
  {
    charlib::LibraryFactory::Options ref_opt = opt;
    ref_opt.cache_dir.clear();
    charlib::LibraryFactory ref(ref_opt);
    ref_text = liberty::write_library(ref.library(scenario));
  }
  const std::uint64_t ref_attempts = spice::solver_counters().transient_attempts;
  ASSERT_GT(ref_attempts, 0u);

  pid_t pids[2] = {-1, -1};
  for (int i = 0; i < 2; ++i) {
    pids[i] = fork();
    ASSERT_GE(pids[i], 0);
    if (pids[i] == 0) {
      spice::reset_solver_counters();
      try {
        charlib::LibraryFactory factory(opt);
        const std::string text = liberty::write_library(factory.library(scenario));
        util::write_file_atomic(dir + "/child" + std::to_string(i) + ".lib", text);
        util::write_file_atomic(
            dir + "/child" + std::to_string(i) + ".count",
            std::to_string(spice::solver_counters().transient_attempts));
        _exit(0);
      } catch (...) {
        _exit(3);
      }
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  const std::uint64_t c0 = std::stoull(read_file(dir + "/child0.count"));
  const std::uint64_t c1 = std::stoull(read_file(dir + "/child1.count"));
  // Exactly one campaign total: the loser waited on the winner's lease (or
  // found the published file) and solved NOTHING.
  EXPECT_EQ(c0 + c1, ref_attempts) << "c0=" << c0 << " c1=" << c1;
  EXPECT_EQ(std::min(c0, c1), 0u);

  // Both observers — and the cache-less reference — read identical bytes.
  const std::string t0 = read_file(dir + "/child0.lib");
  const std::string t1 = read_file(dir + "/child1.lib");
  ASSERT_FALSE(t0.empty());
  EXPECT_EQ(t0, t1);
  EXPECT_EQ(t0, ref_text);
}

}  // namespace
}  // namespace rw
