#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace rw::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnceIntoItsSlot) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<int> out(n, -1);
  std::vector<std::atomic<int>> calls(n);
  pool.parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<int>(3 * i + 1);
    calls[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(3 * i + 1)) << i;
    EXPECT_EQ(calls[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ResultsMatchSerialExecution) {
  const std::size_t n = 257;
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = static_cast<double>(i) * 1.5 - 3.0;

  ThreadPool pool(8);
  std::vector<double> parallel(n);
  pool.parallel_for(n, [&](std::size_t i) { parallel[i] = static_cast<double>(i) * 1.5 - 3.0; });
  EXPECT_EQ(parallel, serial);  // bitwise: slots, not accumulation order
}

TEST(ThreadPool, ZeroAndSingleElementLoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    try {
      pool.parallel_for(100, [&](std::size_t i) {
        if (i == 37 || i == 90) throw std::runtime_error("boom at " + std::to_string(i));
      });
      FAIL() << "exception not propagated";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 37");
    }
    // The pool stays usable after a failed batch.
    std::vector<int> out(8, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 8);
  }
}

TEST(ThreadPool, NestedLoopsRunInline) {
  ThreadPool pool(4);
  const std::size_t outer = 8;
  const std::size_t inner = 16;
  std::vector<std::vector<int>> out(outer, std::vector<int>(inner, 0));
  pool.parallel_for(outer, [&](std::size_t i) {
    // Nested call from a (possibly) worker thread must not deadlock and must
    // still hit every index.
    pool.parallel_for(inner, [&](std::size_t j) { out[i][j] = static_cast<int>(i * inner + j); });
  });
  for (std::size_t i = 0; i < outer; ++i) {
    for (std::size_t j = 0; j < inner; ++j) {
      EXPECT_EQ(out[i][j], static_cast<int>(i * inner + j));
    }
  }
}

TEST(ThreadPool, NestedLoopsPropagateLowestIndexException) {
  ThreadPool pool(4);
  const std::size_t outer = 8;
  const std::size_t inner = 32;
  for (int round = 0; round < 3; ++round) {
    // Inner loops run inline on worker threads; an exception thrown inside a
    // nested parallel_for must surface from the inner call as its own
    // lowest-index failure, and the outer loop must then report the lowest
    // *outer* index whose inner loop failed.
    try {
      pool.parallel_for(outer, [&](std::size_t i) {
        pool.parallel_for(inner, [&](std::size_t j) {
          if (i >= 3 && (j == 7 || j == 20)) {
            throw std::runtime_error("inner boom at " + std::to_string(i) + ":" +
                                     std::to_string(j));
          }
        });
      });
      FAIL() << "exception not propagated through nested pools";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "inner boom at 3:7");
    }
    // Both nesting levels stay usable afterwards.
    std::vector<std::vector<int>> out(outer, std::vector<int>(inner, 0));
    pool.parallel_for(outer, [&](std::size_t i) {
      pool.parallel_for(inner, [&](std::size_t j) { out[i][j] = 1; });
    });
    int total = 0;
    for (const auto& row : out) total += std::accumulate(row.begin(), row.end(), 0);
    EXPECT_EQ(total, static_cast<int>(outer * inner));
  }
}

TEST(ThreadPool, NestedExceptionAcrossDistinctPools) {
  // An outer loop on one pool, inner loops on another (the shared-pool
  // pattern the characterizer uses): the inner pool's lowest-index guarantee
  // must hold even when its caller is a foreign worker thread.
  ThreadPool outer_pool(4);
  ThreadPool inner_pool(4);
  try {
    outer_pool.parallel_for(4, [&](std::size_t i) {
      inner_pool.parallel_for(64, [&](std::size_t j) {
        if (i == 1 && j >= 10) throw std::out_of_range("nested " + std::to_string(j));
      });
    });
    FAIL() << "exception not propagated";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "nested 10");
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> out(64, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  ThreadPool outer(4);
  ThreadPool shared_target(4);
  std::vector<std::vector<int>> out(6, std::vector<int>(100, 0));
  // Several threads issuing parallel_for on the same pool concurrently.
  outer.parallel_for(out.size(), [&](std::size_t k) {
    shared_target.parallel_for(out[k].size(), [&](std::size_t i) { out[k][i] = 1; });
  });
  for (const auto& row : out) {
    EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), 100);
  }
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("RW_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  ASSERT_EQ(setenv("RW_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("RW_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, ConsumeThreadFlagRemovesFlagAndKeepsPositionals) {
  const char* raw[] = {"prog", "pos1", "--threads", "2", "pos2", nullptr};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = 5;
  EXPECT_EQ(consume_thread_flag(argc, argv.data()), 2u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "pos1");
  EXPECT_STREQ(argv[2], "pos2");

  const char* raw_eq[] = {"prog", "--threads=5", "pos", nullptr};
  std::vector<char*> argv_eq;
  for (const char* a : raw_eq) argv_eq.push_back(const_cast<char*>(a));
  int argc_eq = 3;
  EXPECT_EQ(consume_thread_flag(argc_eq, argv_eq.data()), 5u);
  ASSERT_EQ(argc_eq, 2);
  EXPECT_STREQ(argv_eq[1], "pos");

  set_shared_thread_count(0);  // restore the default for other tests
}

}  // namespace
}  // namespace rw::util
