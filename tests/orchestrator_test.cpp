/// Checkpoint/resume machinery: the atomic file writer, the hexfloat
/// artifact codecs (exact round trips are what make resume bitwise), stage
/// caching semantics against corrupt/stale/divergent manifests, the
/// RunReport exit-code contract, and the FL001 stale-artifact lint rule.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "flow/artifact.hpp"
#include "flow/cancel.hpp"
#include "flow/orchestrator.hpp"
#include "flow/run_report.hpp"
#include "lint/diagnostic.hpp"
#include "liberty/parser.hpp"
#include "netlist/annotate.hpp"
#include "util/atomic_file.hpp"

namespace rw {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rw_orch_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(OrchestratorTest, AtomicWriteCreatesParentsReplacesAndLeavesNoTemp) {
  const std::string path = dir_ + "/a/b/c.txt";
  util::write_file_atomic(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  util::write_file_atomic(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  // No `.tmp.` siblings survive a successful publish.
  for (const auto& entry : fs::directory_iterator(dir_ + "/a/b")) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos) << entry.path();
  }
}

TEST_F(OrchestratorTest, AtomicNothrowReportsFailureInsteadOfThrowing) {
  const std::string blocker = dir_ + "/blocker";
  util::write_file_atomic(blocker, "x");
  // Parent "directory" is a regular file: the write cannot land.
  EXPECT_FALSE(util::write_file_atomic_nothrow(blocker + "/child.txt", "y"));
  EXPECT_TRUE(util::write_file_atomic_nothrow(dir_ + "/ok.txt", "y"));
}

TEST_F(OrchestratorTest, DoublesCodecRoundTripsBitwise) {
  const std::vector<double> values = {
      0.0, -0.0, 1.0 / 3.0, 4.0 * std::atan(1.0), 1e-300, -2.5e300,
      std::numeric_limits<double>::denorm_min(), std::numeric_limits<double>::max(),
      123.456789012345678, -0.0004999999999999999};
  const std::vector<double> back = flow::artifact::decode_doubles(
      flow::artifact::encode_doubles(values));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back[i], &values[i], sizeof(double)), 0) << "index " << i;
  }
}

TEST_F(OrchestratorTest, DutiesCodecRoundTripsBitwise) {
  std::vector<netlist::InstanceDuty> duties(3);
  duties[0] = {1.0 / 3.0, 2.0 / 7.0};
  duties[1] = {0.0, 1.0};
  duties[2] = {0.123456789012345678, 1e-17};
  const auto back = flow::artifact::decode_duties(flow::artifact::encode_duties(duties));
  ASSERT_EQ(back.size(), duties.size());
  for (std::size_t i = 0; i < duties.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back[i].lambda_p, &duties[i].lambda_p, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&back[i].lambda_n, &duties[i].lambda_n, sizeof(double)), 0);
  }
}

TEST_F(OrchestratorTest, LibraryCodecRoundTripsTheFixtureLibrary) {
  const liberty::Library lib =
      liberty::parse_library_file(std::string(RW_REPO_DIR) + "/examples/fixtures/mini.lib");
  ASSERT_FALSE(lib.cells().empty());
  const std::string once = flow::artifact::encode_library(lib);
  const liberty::Library decoded = flow::artifact::decode_library(once);
  // Re-encoding the decoded library must reproduce the bytes exactly; with a
  // hexfloat-exact codec this is equivalent to full structural equality.
  EXPECT_EQ(flow::artifact::encode_library(decoded), once);
  EXPECT_EQ(decoded.cells().size(), lib.cells().size());
}

TEST_F(OrchestratorTest, DecodersRejectForeignArtifacts) {
  EXPECT_THROW((void)flow::artifact::decode_doubles("not an artifact"), std::runtime_error);
  EXPECT_THROW((void)flow::artifact::decode_duties(flow::artifact::encode_doubles({1.0})),
               std::runtime_error);
  EXPECT_THROW((void)flow::artifact::decode_library("garbage"), std::runtime_error);
}

TEST_F(OrchestratorTest, DisabledStageReturnsComputeAndWritesNothing) {
  flow::OrchestratorOptions opts;  // dir empty: disabled
  flow::FlowOrchestrator run("test_flow", opts);
  EXPECT_FALSE(run.enabled());
  const std::vector<double> out = run.stage(
      "calc", [] { return std::vector<double>{1.0 / 3.0}; },
      [](const std::vector<double>&) -> std::string {
        ADD_FAILURE() << "encode must not run when orchestration is disabled";
        return "";
      },
      [](const std::string&) -> std::vector<double> {
        ADD_FAILURE() << "decode must not run when orchestration is disabled";
        return {};
      });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1.0 / 3.0);
  ASSERT_EQ(run.report().stages.size(), 1u);
  EXPECT_EQ(run.report().stages[0].status, "done");
  EXPECT_EQ(run.finish(), 0);
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(OrchestratorTest, StagePersistsThenResumesFromDiskWithoutRecomputing) {
  const std::vector<double> payload = {1.0 / 3.0, 4.0 * std::atan(1.0)};
  {
    flow::OrchestratorOptions opts;
    opts.dir = dir_;
    flow::FlowOrchestrator run("test_flow", opts);
    const auto out = run.stage(
        "calc", [&] { return payload; }, flow::artifact::encode_doubles,
        flow::artifact::decode_doubles);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(run.finish(), 0);
  }
  EXPECT_TRUE(fs::exists(dir_ + "/flow_manifest.json"));
  EXPECT_TRUE(fs::exists(dir_ + "/00_calc.art"));
  EXPECT_TRUE(fs::exists(dir_ + "/run_report.json"));

  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  opts.resume = true;
  flow::FlowOrchestrator run("test_flow", opts);
  const auto out = run.stage(
      "calc",
      []() -> std::vector<double> {
        ADD_FAILURE() << "cached stage must not recompute";
        return {};
      },
      flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  EXPECT_EQ(out, payload);
  ASSERT_EQ(run.report().stages.size(), 1u);
  EXPECT_EQ(run.report().stages[0].status, "cached");
}

TEST_F(OrchestratorTest, ResumeAcrossFlowNamesOrCorruptManifestRecomputes) {
  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  {
    flow::FlowOrchestrator run("flow_a", opts);
    (void)run.stage("calc", [] { return std::vector<double>{2.0}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  }

  // A different flow's manifest must not be served.
  opts.resume = true;
  {
    bool computed = false;
    flow::FlowOrchestrator run("flow_b", opts);
    (void)run.stage("calc",
                    [&] {
                      computed = true;
                      return std::vector<double>{2.0};
                    },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
    EXPECT_TRUE(computed);
  }

  // Corrupt manifest: recompute, never refuse to run.
  util::write_file_atomic(dir_ + "/flow_manifest.json", "{\"flow\": 7 ohno");
  {
    bool computed = false;
    flow::FlowOrchestrator run("flow_b", opts);
    (void)run.stage("calc",
                    [&] {
                      computed = true;
                      return std::vector<double>{2.0};
                    },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
    EXPECT_TRUE(computed);
    EXPECT_EQ(run.report().stages[0].status, "done");
  }
}

TEST_F(OrchestratorTest, StaleOrCorruptArtifactRecomputes) {
  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  {
    flow::FlowOrchestrator run("test_flow", opts);
    (void)run.stage("calc", [] { return std::vector<double>{5.0}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  }
  // Truncate the artifact: manifest size check fails -> recompute.
  util::write_file_atomic(dir_ + "/00_calc.art", "x");
  opts.resume = true;
  bool computed = false;
  flow::FlowOrchestrator run("test_flow", opts);
  const auto out = run.stage("calc",
                             [&] {
                               computed = true;
                               return std::vector<double>{5.0};
                             },
                             flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  EXPECT_TRUE(computed);
  EXPECT_EQ(out, std::vector<double>{5.0});
}

TEST_F(OrchestratorTest, FreshRunDropsDivergentLaterStages) {
  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  {
    flow::FlowOrchestrator run("test_flow", opts);
    (void)run.stage("a", [] { return std::vector<double>{1.0}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
    (void)run.stage("b", [] { return std::vector<double>{2.0}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  }
  // Re-run (no resume): stage 0 is re-persisted, which must invalidate the
  // old record for stage 1 until it completes again.
  {
    flow::FlowOrchestrator run("test_flow", opts);
    (void)run.stage("a", [] { return std::vector<double>{1.5}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  }
  const std::string manifest = slurp(dir_ + "/flow_manifest.json");
  EXPECT_NE(manifest.find("\"a\""), std::string::npos);
  EXPECT_EQ(manifest.find("\"b\""), std::string::npos);
}

TEST_F(OrchestratorTest, RunReportExitCodesAndJson) {
  flow::RunReport report;
  report.flow = "test_flow";
  EXPECT_EQ(report.exit_code(), 0);
  report.status = "degraded";
  EXPECT_EQ(report.exit_code(), 1);
  report.status = "failed";
  EXPECT_EQ(report.exit_code(), 2);
  report.status = "cancelled";
  report.cancel_reason = "deadline";
  EXPECT_EQ(report.exit_code(), 2);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"status\""), std::string::npos);
  EXPECT_NE(json.find("cancelled"), std::string::npos);
  EXPECT_NE(json.find("deadline"), std::string::npos);

  ASSERT_TRUE(report.save(dir_ + "/r.json"));
  EXPECT_EQ(slurp(dir_ + "/r.json"), json);
}

TEST_F(OrchestratorTest, FinishPromotesDegradationAndWritesReport) {
  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  flow::FlowOrchestrator run("test_flow", opts);
  (void)run.stage("calc", [] { return std::vector<double>{1.0}; },
                  flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  run.report().fallbacks = 3;
  EXPECT_EQ(run.finish(), 1);
  EXPECT_EQ(run.report().status, "degraded");
  EXPECT_NE(slurp(dir_ + "/run_report.json").find("degraded"), std::string::npos);
  EXPECT_EQ(run.finish(), 1) << "finish() must be idempotent";
}

TEST_F(OrchestratorTest, FailedAndCancelledStagesAreRecordedAndRethrown) {
  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  {
    flow::FlowOrchestrator run("test_flow", opts);
    EXPECT_THROW((void)run.stage(
                     "boom",
                     []() -> std::vector<double> { throw std::runtime_error("kaput"); },
                     flow::artifact::encode_doubles, flow::artifact::decode_doubles),
                 std::runtime_error);
    EXPECT_EQ(run.finish(), 2);
    EXPECT_EQ(run.report().status, "failed");
    EXPECT_EQ(run.report().stages[0].status, "failed");
    EXPECT_NE(run.report().stages[0].error.find("kaput"), std::string::npos);
  }
  EXPECT_NE(slurp(dir_ + "/run_report.json").find("failed"), std::string::npos);

  {
    flow::FlowOrchestrator run("test_flow", opts);
    EXPECT_THROW((void)run.stage(
                     "boom",
                     []() -> std::vector<double> { throw flow::CancelledError("deadline hit"); },
                     flow::artifact::encode_doubles, flow::artifact::decode_doubles),
                 flow::CancelledError);
    EXPECT_EQ(run.finish(), 2);
    EXPECT_EQ(run.report().status, "cancelled");
    EXPECT_EQ(run.report().cancel_reason, "deadline hit");
  }
  EXPECT_NE(slurp(dir_ + "/run_report.json").find("deadline hit"), std::string::npos);
}

TEST_F(OrchestratorTest, EnabledAndDisabledRunsAgreeBitwise) {
  const auto compute = [] {
    return std::vector<double>{1.0 / 3.0, 2.0 / 7.0, 4.0 * std::atan(1.0), 1e-300};
  };
  flow::OrchestratorOptions disabled;
  flow::FlowOrchestrator plain("test_flow", disabled);
  const auto a = plain.stage("calc", compute, flow::artifact::encode_doubles,
                             flow::artifact::decode_doubles);

  flow::OrchestratorOptions enabled;
  enabled.dir = dir_;
  flow::FlowOrchestrator checkpointed("test_flow", enabled);
  const auto b = checkpointed.stage("calc", compute, flow::artifact::encode_doubles,
                                    flow::artifact::decode_doubles);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0) << "index " << i;
  }
}

TEST_F(OrchestratorTest, Fl001FlagsMissingStaleAndUnparsableManifests) {
  flow::OrchestratorOptions opts;
  opts.dir = dir_;
  {
    flow::FlowOrchestrator run("test_flow", opts);
    (void)run.stage("a", [] { return std::vector<double>{1.0}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
    (void)run.stage("b", [] { return std::vector<double>{2.0}; },
                    flow::artifact::encode_doubles, flow::artifact::decode_doubles);
  }
  const std::string manifest = dir_ + "/flow_manifest.json";
  EXPECT_TRUE(flow::lint_flow_manifest(manifest).empty()) << "healthy dir must lint clean";

  fs::remove(dir_ + "/00_a.art");
  util::write_file_atomic(dir_ + "/01_b.art", "stale");
  const auto diags = flow::lint_flow_manifest(manifest);
  ASSERT_EQ(diags.size(), 2u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule_id, std::string(lint::rules::kFlowStaleArtifact));
    EXPECT_EQ(d.severity, lint::Severity::kWarning);
    EXPECT_FALSE(d.fix_hint.empty());
  }
  EXPECT_NE(diags[0].message.find("missing"), std::string::npos);
  EXPECT_NE(diags[1].message.find("stale"), std::string::npos);

  util::write_file_atomic(manifest, "]]]]");
  const auto broken = flow::lint_flow_manifest(manifest);
  ASSERT_EQ(broken.size(), 1u);
  EXPECT_NE(broken[0].message.find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace rw
