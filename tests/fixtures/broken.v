// rwlint fixture: deliberately broken — seeded with exactly three defects:
//   1. combinational cycle u1 <-> u2            -> NL001
//   2. net m driven by both u3 and u4           -> NL003
//   3. duty-cycle index 1.20 outside [0,1] (u5) -> AN001
// Everything else is well-formed, so rwlint must report exactly these three
// rule ids (see ISSUE 2 acceptance criteria and tests/lint_test.cpp).
module broken (input a, input b, output m, output z);
  wire n1;
  wire n2;
  NAND2_X1 u1 (.A(n2), .B(a), .Z(n1));
  INV_X1 u2 (.A(n1), .Z(n2));
  NAND2_X1 u3 (.A(a), .B(b), .Z(m));
  INV_X1 u4 (.A(a), .Z(m));
  INV_X1_1.20_0.50 u5 (.A(b), .Z(z));
endmodule
