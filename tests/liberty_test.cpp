#include <gtest/gtest.h>

#include "liberty/library.hpp"
#include "liberty/merge.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"

namespace rw::liberty {
namespace {

TimingTable make_table(double base) {
  TimingTable t;
  const util::Axis slews({10.0, 100.0});
  const util::Axis loads({1.0, 10.0});
  t.delay_ps = util::Table2D(slews, loads, {base, base + 1, base + 2, base + 3});
  t.out_slew_ps = util::Table2D(slews, loads, {5.0, 6.0, 7.0, 8.0});
  return t;
}

Cell make_nand2() {
  Cell c;
  c.name = "NAND2_X1";
  c.family = "NAND2";
  c.drive_x = 1;
  c.area_um2 = 2.5;
  c.truth = 0b0111;
  c.output_pin = "Z";
  c.pins = {{"A", true, false, 1.25}, {"B", true, false, 1.3}, {"Z", false, false, 0.0}};
  TimingArc a;
  a.related_pin = "A";
  a.sense = TimingSense::kNegativeUnate;
  a.rise = make_table(10.0);
  a.fall = make_table(20.0);
  TimingArc b = a;
  b.related_pin = "B";
  c.arcs = {a, b};
  return c;
}

Cell make_dff() {
  Cell c;
  c.name = "DFF_X1";
  c.family = "DFF";
  c.is_flop = true;
  c.area_um2 = 6.0;
  c.setup_ps = 35.5;
  c.hold_ps = 0.0;
  c.output_pin = "Q";
  c.pins = {{"D", true, false, 0.9}, {"CK", true, true, 1.1}, {"Q", false, false, 0.0}};
  TimingArc ck;
  ck.related_pin = "CK";
  ck.clocked = true;
  ck.sense = TimingSense::kNonUnate;
  ck.rise = make_table(50.0);
  ck.fall = make_table(55.0);
  c.arcs = {ck};
  return c;
}

TEST(Library, AddFindFamily) {
  Library lib("test");
  lib.add_cell(make_nand2());
  Cell bigger = make_nand2();
  bigger.name = "NAND2_X4";
  bigger.drive_x = 4;
  lib.add_cell(bigger);
  EXPECT_THROW(lib.add_cell(make_nand2()), std::invalid_argument);  // duplicate
  EXPECT_NE(lib.find("NAND2_X1"), nullptr);
  EXPECT_EQ(lib.find("NOPE"), nullptr);
  EXPECT_THROW((void)lib.at("NOPE"), std::out_of_range);
  const auto family = lib.family("NAND2");
  ASSERT_EQ(family.size(), 2u);
  EXPECT_EQ(family[0]->drive_x, 1);  // sorted by drive
  EXPECT_EQ(family[1]->drive_x, 4);
}

TEST(Cell, PinQueries) {
  const Cell c = make_nand2();
  EXPECT_EQ(c.n_inputs(), 2);
  EXPECT_DOUBLE_EQ(c.input_cap_ff("B"), 1.3);
  EXPECT_THROW((void)c.input_cap_ff("Z"), std::out_of_range);
  ASSERT_NE(c.arc_from("A"), nullptr);
  EXPECT_EQ(c.arc_from("Q"), nullptr);
}

TEST(WriterParser, RoundTripPreservesEverything) {
  Library lib("rt");
  lib.add_cell(make_nand2());
  lib.add_cell(make_dff());

  const std::string text = write_library(lib);
  const Library parsed = parse_library(text);

  EXPECT_EQ(parsed.name(), "rt");
  ASSERT_EQ(parsed.size(), 2u);

  const Cell& nand = parsed.at("NAND2_X1");
  EXPECT_EQ(nand.family, "NAND2");
  EXPECT_EQ(nand.drive_x, 1);
  EXPECT_DOUBLE_EQ(nand.area_um2, 2.5);
  EXPECT_EQ(nand.truth, 0b0111u);
  EXPECT_FALSE(nand.is_flop);
  ASSERT_EQ(nand.pins.size(), 3u);
  EXPECT_DOUBLE_EQ(nand.pins[1].cap_ff, 1.3);
  ASSERT_EQ(nand.arcs.size(), 2u);
  EXPECT_EQ(nand.arcs[0].sense, TimingSense::kNegativeUnate);
  EXPECT_DOUBLE_EQ(nand.arcs[0].rise.delay_ps.lookup(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(nand.arcs[0].fall.delay_ps.lookup(100.0, 10.0), 23.0);
  EXPECT_DOUBLE_EQ(nand.arcs[0].rise.out_slew_ps.lookup(10.0, 10.0), 6.0);

  const Cell& dff = parsed.at("DFF_X1");
  EXPECT_TRUE(dff.is_flop);
  EXPECT_DOUBLE_EQ(dff.setup_ps, 35.5);
  ASSERT_EQ(dff.arcs.size(), 1u);
  EXPECT_TRUE(dff.arcs[0].clocked);
  EXPECT_TRUE(dff.pins[1].is_clock);
}

TEST(WriterParser, InterpMarkerRoundTrips) {
  // The adaptive λ-grid provenance marker survives write -> parse, so
  // disk-cached interpolated cells keep their certified bound (LB007 audits
  // it) across factory restarts and manifest resumes.
  Library lib("interp");
  Cell c = make_nand2();
  c.interp = InterpMarker{0.2, 0.4, 0.0, 0.2, 1.234567};
  lib.add_cell(c);

  const Library parsed = parse_library(write_library(lib));
  const Cell& rt = parsed.at("NAND2_X1");
  ASSERT_TRUE(rt.interp.has_value());
  EXPECT_DOUBLE_EQ(rt.interp->lambda_p_lo, 0.2);
  EXPECT_DOUBLE_EQ(rt.interp->lambda_p_hi, 0.4);
  EXPECT_DOUBLE_EQ(rt.interp->lambda_n_lo, 0.0);
  EXPECT_DOUBLE_EQ(rt.interp->lambda_n_hi, 0.2);
  EXPECT_NEAR(rt.interp->bound_ps, 1.234567, 1e-6);  // writer carries 6 decimals

  // Cells without the marker stay marker-free through the round trip.
  Library plain("plain");
  plain.add_cell(make_nand2());
  EXPECT_FALSE(parse_library(write_library(plain)).at("NAND2_X1").interp.has_value());
}

TEST(WriterParser, DoubleRoundTripIsStable) {
  Library lib("rt");
  lib.add_cell(make_nand2());
  const std::string once = write_library(lib);
  const std::string twice = write_library(parse_library(once));
  EXPECT_EQ(once, twice);
}

TEST(Parser, ReportsSyntaxErrorsWithLine) {
  EXPECT_THROW(parse_library("library (x) { cell (y) { area : }"), std::runtime_error);
  EXPECT_THROW(parse_library("cell (y) {}"), std::runtime_error);
  try {
    parse_library("library (x) {\n  !!!\n}");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos) << e.what();
  }
}

TEST(Parser, ToleratesCommentsAndContinuations) {
  const std::string text = R"(/* header */
library (c) {
  /* multi
     line comment */
  cell (INV_X1) {
    area : 1.0;
    rw_truth : 1;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (Z) { direction : output; }
  }
}
)";
  const Library lib = parse_library(text);
  EXPECT_EQ(lib.size(), 1u);
}

TEST(Merge, IndexesCellNames) {
  Library a("a");
  a.add_cell(make_nand2());
  Library b("b");
  b.add_cell(make_nand2());

  const Library merged = merge_libraries({{aging::AgingScenario{0.4, 0.6, 10.0, true}, &a},
                                          {aging::AgingScenario{0.9, 0.5, 10.0, true}, &b}});
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_NE(merged.find("NAND2_X1_0.40_0.60"), nullptr);
  EXPECT_NE(merged.find("NAND2_X1_0.90_0.50"), nullptr);
  EXPECT_EQ(merged.find("NAND2_X1"), nullptr);
}

TEST(Merge, RejectsDuplicateCorners) {
  Library a("a");
  a.add_cell(make_nand2());
  EXPECT_THROW(merge_libraries({{aging::AgingScenario{0.4, 0.6, 10.0, true}, &a},
                                {aging::AgingScenario{0.4, 0.6, 1.0, true}, &a}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rw::liberty
