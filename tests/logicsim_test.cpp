#include <gtest/gtest.h>

#include "charlib/factory.hpp"
#include "logicsim/activity.hpp"
#include "logicsim/simulator.hpp"
#include "logicsim/timingsim.hpp"
#include "netlist/builder.hpp"
#include "netlist/sdf.hpp"
#include "sta/analysis.hpp"
#include "util/rng.hpp"

namespace rw::logicsim {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "NAND2_X1", "XOR2_X1", "AND2_X1", "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}
const liberty::Library& lib() { return factory().library(aging::AgingScenario::fresh()); }

/// Full adder (sum, carry) + registered carry feedback: a tiny accumulator.
struct TestDesign {
  netlist::Module m{"fa"};
  netlist::NetId a, b, sum, carry_q;
};

TestDesign make_design() {
  TestDesign d;
  d.a = d.m.add_net("a");
  d.b = d.m.add_net("b");
  d.m.mark_input(d.a);
  d.m.mark_input(d.b);
  d.m.set_clock(d.m.add_net("clk"));
  netlist::NetlistBuilder builder(d.m, lib());
  const auto axb = builder.gate("XOR2_X1", {d.a, d.b});
  // carry_in comes from the registered carry-out.
  const auto cin_placeholder = d.m.add_net("cin");
  d.sum = builder.gate("XOR2_X1", {axb, cin_placeholder});
  const auto t1 = builder.gate("AND2_X1", {d.a, d.b});
  const auto t2 = builder.gate("AND2_X1", {axb, cin_placeholder});
  const auto cout = builder.gate("NAND2_X1", {builder.gate("INV_X1", {t1}),
                                              builder.gate("INV_X1", {t2})});
  // Register the carry: cin_placeholder needs a driver -> flop. Rebuild by
  // adding DFF driving cin.
  d.m.add_instance("r0", "DFF_X1", {cout, d.m.clock()}, cin_placeholder);
  d.carry_q = cin_placeholder;
  d.m.mark_output(d.sum);
  d.m.mark_output(d.carry_q);
  d.m.validate();
  return d;
}

TEST(CycleSimulator, FullAdderTruth) {
  TestDesign d = make_design();
  CycleSimulator sim(d.m, lib());
  // With carry state 0: sum = a ^ b.
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      sim.reset();
      sim.set_input(d.a, a != 0);
      sim.set_input(d.b, b != 0);
      sim.evaluate();
      EXPECT_EQ(sim.value(d.sum), (a ^ b) != 0) << a << b;
    }
  }
}

TEST(CycleSimulator, CarryAccumulates) {
  TestDesign d = make_design();
  CycleSimulator sim(d.m, lib());
  // a=b=1 -> carry=1 captured at the edge; next cycle sum = a^b^1.
  sim.set_input(d.a, true);
  sim.set_input(d.b, true);
  sim.step();
  sim.set_input(d.a, true);
  sim.set_input(d.b, false);
  sim.evaluate();
  EXPECT_TRUE(sim.value(d.carry_q));      // registered carry
  EXPECT_FALSE(sim.value(d.sum));         // 1 ^ 0 ^ 1 = 0
}

TEST(Activity, ProbabilitiesAndDuties) {
  TestDesign d = make_design();
  CycleSimulator sim(d.m, lib());
  ActivityCollector act(d.m.net_count());
  // a always 1, b always 0.
  for (int k = 0; k < 100; ++k) {
    sim.set_input(d.a, true);
    sim.set_input(d.b, false);
    sim.evaluate();
    act.observe(sim);
    sim.clock_edge();
  }
  ASSERT_TRUE(act.probability_high(d.a).has_value());
  EXPECT_DOUBLE_EQ(*act.probability_high(d.a), 1.0);
  EXPECT_DOUBLE_EQ(*act.probability_high(d.b), 0.0);
  EXPECT_EQ(act.cycles(), 100u);
  // Constant inputs never toggle; measured rates are exactly 0.
  EXPECT_DOUBLE_EQ(*act.toggle_rate(d.a), 0.0);
  EXPECT_DOUBLE_EQ(*act.toggle_rate(d.b), 0.0);

  const auto duties = extract_duty_cycles(d.m, lib(), act);
  ASSERT_EQ(duties.size(), d.m.instances().size());
  for (const auto& duty : duties) {
    EXPECT_NEAR(duty.lambda_p + duty.lambda_n, 1.0, 1e-9);  // complementary stress
    EXPECT_GE(duty.lambda_n, 0.0);
    EXPECT_LE(duty.lambda_n, 1.0);
  }
  // First gate is XOR2(a, b) with P(a)=1, P(b)=0 -> avg high 0.5.
  EXPECT_NEAR(duties[0].lambda_n, 0.5, 1e-9);
}

TEST(Activity, ToggleRateCountsTransitions) {
  TestDesign d = make_design();
  CycleSimulator sim(d.m, lib());
  ActivityCollector act(d.m.net_count());
  // a alternates every cycle, b is constant: rate(a) = 1, rate(b) = 0, and
  // the first XOR2(a, b) output follows a exactly.
  const netlist::NetId axb = d.m.instances()[0].out;
  for (int k = 0; k < 64; ++k) {
    sim.set_input(d.a, (k & 1) != 0);
    sim.set_input(d.b, false);
    sim.evaluate();
    act.observe(sim);
    sim.clock_edge();
  }
  EXPECT_DOUBLE_EQ(*act.toggle_rate(d.a), 1.0);
  EXPECT_DOUBLE_EQ(*act.toggle_rate(d.b), 0.0);
  EXPECT_DOUBLE_EQ(*act.toggle_rate(axb), 1.0);
  // 64 observations alternating 0/1: exactly half are high.
  EXPECT_DOUBLE_EQ(*act.probability_high(d.a), 0.5);
}

TEST(Activity, NoDataIsExplicit) {
  TestDesign d = make_design();
  ActivityCollector act(d.m.net_count());
  // Zero observations: no probability, no rate — and no invented 0.5.
  EXPECT_FALSE(act.probability_high(d.a).has_value());
  EXPECT_FALSE(act.toggle_rate(d.a).has_value());
  EXPECT_THROW((void)extract_duty_cycles(d.m, lib(), act), std::invalid_argument);

  // One observation pins probabilities but no boundary has been seen yet.
  CycleSimulator sim(d.m, lib());
  sim.set_input(d.a, true);
  sim.set_input(d.b, false);
  sim.evaluate();
  act.observe(sim);
  EXPECT_TRUE(act.probability_high(d.a).has_value());
  EXPECT_FALSE(act.toggle_rate(d.a).has_value());
}

TEST(TimingSimulator, MatchesCycleSimAtGenerousPeriod) {
  TestDesign d = make_design();
  const sta::Sta sta(d.m, lib());
  const auto ann = netlist::compute_delay_annotation(sta);
  TimingSimulator timed(d.m, lib(), ann, 100000.0);
  CycleSimulator golden(d.m, lib());
  util::Rng rng(11);
  for (int k = 0; k < 200; ++k) {
    const bool a = rng.chance(0.5);
    const bool b = rng.chance(0.5);
    timed.set_input(d.a, a);
    timed.set_input(d.b, b);
    golden.set_input(d.a, a);
    golden.set_input(d.b, b);
    golden.evaluate();
    timed.run_cycle();
    EXPECT_EQ(timed.sampled(d.sum), golden.value(d.sum)) << "cycle " << k;
    EXPECT_EQ(timed.sampled(d.carry_q), golden.value(d.carry_q)) << "cycle " << k;
    golden.clock_edge();
  }
}

TEST(TimingSimulator, TooShortPeriodCausesCaptureErrors) {
  TestDesign d = make_design();
  const sta::Sta sta(d.m, lib());
  const auto ann = netlist::compute_delay_annotation(sta);
  // Run far below the critical delay: flops must capture wrong values at
  // least once under random stimulus.
  TimingSimulator timed(d.m, lib(), ann, 0.25 * sta.critical_delay_ps());
  CycleSimulator golden(d.m, lib());
  util::Rng rng(12);
  int mismatches = 0;
  for (int k = 0; k < 200; ++k) {
    const bool a = rng.chance(0.5);
    const bool b = rng.chance(0.5);
    timed.set_input(d.a, a);
    timed.set_input(d.b, b);
    golden.set_input(d.a, a);
    golden.set_input(d.b, b);
    golden.evaluate();
    timed.run_cycle();
    if (timed.sampled(d.sum) != golden.value(d.sum)) ++mismatches;
    golden.clock_edge();
  }
  EXPECT_GT(mismatches, 0);
}

TEST(TimingSimulator, RejectsBadPeriodAndInputs) {
  TestDesign d = make_design();
  const sta::Sta sta(d.m, lib());
  const auto ann = netlist::compute_delay_annotation(sta);
  EXPECT_THROW(TimingSimulator(d.m, lib(), ann, 0.0), std::invalid_argument);
  TimingSimulator timed(d.m, lib(), ann, 1000.0);
  EXPECT_THROW(timed.set_input(d.sum, true), std::invalid_argument);
}

}  // namespace
}  // namespace rw::logicsim
