#include <gtest/gtest.h>

#include "charlib/factory.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "util/strings.hpp"

// Library-wide property sweeps over the full 7x7-characterized catalog
// (parameterized per cell). These run against the shared disk cache, so they
// are fast after the first characterization pass.

namespace rw {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f{};
  return f;
}
const liberty::Library& fresh() { return factory().library(aging::AgingScenario::fresh()); }
const liberty::Library& aged() { return factory().library(aging::AgingScenario::worst_case(10)); }

std::vector<std::string> all_cell_names() {
  std::vector<std::string> names;
  for (const auto& cell : fresh().cells()) names.push_back(cell.name);
  return names;
}

class CellProperty : public ::testing::TestWithParam<std::string> {
 protected:
  const liberty::Cell& cell() const { return fresh().at(GetParam()); }
  const liberty::Cell& aged_cell() const { return aged().at(GetParam()); }
};

TEST_P(CellProperty, DelayMonotoneInLoadAtMidSlew) {
  for (const auto& arc : cell().arcs) {
    for (const bool rise : {true, false}) {
      const auto& t = rise ? arc.rise : arc.fall;
      if (t.empty()) continue;
      double prev = t.delay_ps.lookup(60.0, 0.5);
      for (const double load : {2.0, 4.0, 8.0, 14.0, 20.0}) {
        const double d = t.delay_ps.lookup(60.0, load);
        EXPECT_GT(d, prev) << GetParam() << "/" << arc.related_pin << " load " << load;
        prev = d;
      }
    }
  }
}

TEST_P(CellProperty, OutputSlewPositiveAndMonotoneInLoad) {
  for (const auto& arc : cell().arcs) {
    for (const bool rise : {true, false}) {
      const auto& t = rise ? arc.rise : arc.fall;
      if (t.empty()) continue;
      double prev = 0.0;
      for (const double load : {0.5, 2.0, 8.0, 20.0}) {
        const double s = t.out_slew_ps.lookup(60.0, load);
        EXPECT_GT(s, 0.0);
        EXPECT_GE(s, prev - 1e-9) << GetParam() << "/" << arc.related_pin;
        prev = s;
      }
    }
  }
}

TEST_P(CellProperty, WorstArcDegradesUnderWorstCaseAging) {
  // Aging may improve individual arcs at some OPCs (Fig. 2), but at the
  // cell's *intended* operating region (load proportional to drive) the
  // worst arc must get slower. A fixed tiny load would put X8/X16 drivers
  // into the region where aging legitimately improves them.
  const double load = std::min(20.0, 3.0 * cell().drive_x);
  double worst_fresh = 0.0;
  double worst_aged = 0.0;
  for (std::size_t a = 0; a < cell().arcs.size(); ++a) {
    for (const bool rise : {true, false}) {
      const auto& tf = rise ? cell().arcs[a].rise : cell().arcs[a].fall;
      const auto& ta = rise ? aged_cell().arcs[a].rise : aged_cell().arcs[a].fall;
      if (tf.empty()) continue;
      worst_fresh = std::max(worst_fresh, tf.delay_ps.lookup(60.0, load));
      worst_aged = std::max(worst_aged, ta.delay_ps.lookup(60.0, load));
    }
  }
  EXPECT_GT(worst_aged, worst_fresh) << GetParam();
}

TEST_P(CellProperty, PinCapsAndAreaPositive) {
  EXPECT_GT(cell().area_um2, 0.0);
  for (const auto* pin : cell().input_pins()) {
    EXPECT_GT(pin->cap_ff, 0.1) << GetParam() << "/" << pin->name;
    EXPECT_LT(pin->cap_ff, 50.0) << GetParam() << "/" << pin->name;
  }
  // Area is identical across corners (aging does not change layout).
  EXPECT_DOUBLE_EQ(cell().area_um2, aged_cell().area_um2);
}

TEST_P(CellProperty, LibertyRoundTripExactAt4Decimals) {
  liberty::Library single("rt");
  single.add_cell(cell());
  const liberty::Library back = liberty::parse_library(liberty::write_library(single));
  const liberty::Cell& c = back.at(GetParam());
  EXPECT_EQ(c.family, cell().family);
  EXPECT_EQ(c.truth, cell().truth);
  EXPECT_EQ(c.arcs.size(), cell().arcs.size());
  for (std::size_t a = 0; a < c.arcs.size(); ++a) {
    EXPECT_EQ(c.arcs[a].sense, cell().arcs[a].sense);
    if (!c.arcs[a].rise.empty()) {
      EXPECT_NEAR(c.arcs[a].rise.delay_ps.at(3, 3), cell().arcs[a].rise.delay_ps.at(3, 3), 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FullCatalog, CellProperty, ::testing::ValuesIn(all_cell_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '.') ch = '_';
                           }
                           return name;
                         });

TEST(LibraryProperty, FlopConstraintsAgeConsistently) {
  for (const auto& cell : fresh().cells()) {
    if (!cell.is_flop) continue;
    const auto& a = aged().at(cell.name);
    EXPECT_GT(cell.setup_ps, 0.0) << cell.name;
    // The aged master latch is slower, so the setup requirement grows.
    EXPECT_GE(a.setup_ps, cell.setup_ps - 5.0) << cell.name;
    // CK->Q degrades at a typical OPC.
    EXPECT_GT(a.arcs[0].rise.delay_ps.lookup(60.0, 4.0),
              cell.arcs[0].rise.delay_ps.lookup(60.0, 4.0))
        << cell.name;
  }
}

TEST(LibraryProperty, MergedNamingBijective) {
  // Spot-merge two corners and verify every cell parses back to its base.
  const auto merged = factory().merged({aging::AgingScenario{1.0, 1.0, 10.0, true},
                                        aging::AgingScenario{0.0, 0.0, 10.0, true}});
  EXPECT_EQ(merged.size(), 2 * fresh().size());
  for (const auto& cell : merged.cells()) {
    std::string base;
    double lp = 0.0;
    double ln = 0.0;
    ASSERT_TRUE(util::parse_indexed_cell_name(cell.name, base, lp, ln)) << cell.name;
    EXPECT_NE(fresh().find(base), nullptr) << cell.name;
  }
}

TEST(LibraryProperty, FullLibraryFileRoundTrip) {
  const std::string text = liberty::write_library(fresh());
  const liberty::Library back = liberty::parse_library(text);
  EXPECT_EQ(back.size(), fresh().size());
  EXPECT_EQ(back.name(), fresh().name());
}

}  // namespace
}  // namespace rw
