#include <gtest/gtest.h>

#include "charlib/factory.hpp"
#include "circuits/arith.hpp"
#include "logicsim/simulator.hpp"
#include "synth/cuts.hpp"
#include "synth/decompose.hpp"
#include "sta/analysis.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

namespace rw::synth {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    // A representative mapping library: inverters/buffers, NAND/NOR family,
    // compound cells, drive variants, flop.
    o.cell_subset = {"INV_X1",  "INV_X2",  "INV_X4",  "BUF_X2",   "NAND2_X1", "NAND2_X2",
                     "NAND2_X4", "NAND3_X1", "NOR2_X1", "AND2_X1", "OR2_X1",   "XOR2_X1",
                     "XNOR2_X1", "AOI21_X1", "OAI21_X1", "MUX2_X1", "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}
const liberty::Library& lib() { return factory().library(aging::AgingScenario::fresh()); }

Ir adder_ir(int width) {
  Ir ir;
  const auto a = circuits::input_word(ir, "a", width);
  const auto b = circuits::input_word(ir, "b", width);
  circuits::output_word(ir, "s", circuits::add(ir, a, b));
  return ir;
}

TEST(Ir, SimulatorEvaluatesAdder) {
  Ir ir = adder_ir(8);
  IrSimulator sim(ir);
  util::Rng rng(3);
  for (int k = 0; k < 100; ++k) {
    const unsigned a = static_cast<unsigned>(rng.next_below(256));
    const unsigned b = static_cast<unsigned>(rng.next_below(256));
    for (int i = 0; i < 8; ++i) {
      sim.set_input("a" + std::to_string(i), ((a >> i) & 1U) != 0);
      sim.set_input("b" + std::to_string(i), ((b >> i) & 1U) != 0);
    }
    sim.evaluate();
    unsigned s = 0;
    for (int i = 0; i < 8; ++i) {
      if (sim.output("s" + std::to_string(i))) s |= 1U << i;
    }
    EXPECT_EQ(s, (a + b) & 0xFFu);
  }
}

TEST(Ir, FlopFeedbackCounts) {
  Ir ir;
  const auto count = circuits::register_placeholder(ir, 4);
  const auto next = circuits::add(ir, count, circuits::constant_word(ir, 1, 4));
  circuits::connect_register(ir, count, next);
  circuits::output_word(ir, "c", count);
  IrSimulator sim(ir);
  for (int k = 0; k < 20; ++k) {
    sim.evaluate();
    unsigned c = 0;
    for (int i = 0; i < 4; ++i) {
      if (sim.output("c" + std::to_string(i))) c |= 1U << i;
    }
    EXPECT_EQ(c, static_cast<unsigned>(k) & 0xFu);
    sim.clock_edge();
  }
}

TEST(Ir, ValidateCatchesDanglingFlop) {
  Ir ir;
  ir.flop();
  EXPECT_THROW(ir.validate(), std::runtime_error);
}

TEST(Decompose, ConstantFoldingAndStrash) {
  Ir ir;
  const int a = ir.input("a");
  const int one = ir.constant(true);
  const int x = ir.and_(a, one);       // = a
  const int y = ir.not_(ir.not_(x));   // = a
  const int n1 = ir.nand_(a, y);       // nand(a, a) = !a
  ir.output("z", n1);
  const SubjectGraph g = decompose(ir);
  // Expect exactly: PI + one INV. No NANDs survive folding.
  EXPECT_EQ(g.nand_count(), 0u);
  EXPECT_EQ(g.nodes.size(), 2u);
}

TEST(Decompose, XorCostsFourNands) {
  Ir ir;
  const int a = ir.input("a");
  const int b = ir.input("b");
  ir.output("z", ir.xor_(a, b));
  EXPECT_EQ(decompose(ir).nand_count(), 4u);
}

TEST(Decompose, RejectsConstantOutput) {
  Ir ir;
  const int a = ir.input("a");
  ir.output("z", ir.and_(a, ir.constant(false)));
  EXPECT_THROW(decompose(ir), std::runtime_error);
}

TEST(Cuts, TruthTablesOfXorStructure) {
  Ir ir;
  const int a = ir.input("a");
  const int b = ir.input("b");
  ir.output("z", ir.xor_(a, b));
  const SubjectGraph g = decompose(ir);
  const auto cuts = enumerate_cuts(g);
  // The output node must own a 2-leaf cut computing XOR (truth 0110).
  const int root = g.pos.front().second;
  bool found_xor = false;
  for (const auto& cut : cuts[static_cast<std::size_t>(root)]) {
    if (cut.size == 2 && cut.truth == 0b0110) found_xor = true;
  }
  EXPECT_TRUE(found_xor);
}

TEST(Cuts, ExpandTruthProperty) {
  // Expanding x0 AND x1 from leaves {3,7} to {3,5,7} keeps semantics.
  Cut from;
  from.leaves = {{3, 7, -1, -1}};
  from.size = 2;
  from.truth = 0b1000;  // AND over (leaf3, leaf7)
  Cut to;
  to.leaves = {{3, 5, 7, -1}};
  to.size = 3;
  const std::uint16_t big = expand_truth(from.truth, from, to);
  for (unsigned p = 0; p < 8; ++p) {
    const bool l3 = (p & 1U) != 0;   // position 0
    const bool l7 = (p & 4U) != 0;   // position 2
    EXPECT_EQ(((big >> p) & 1U) != 0, l3 && l7) << p;
  }
}

/// Exhaustive equivalence of a mapped netlist against the IR golden model.
void expect_equivalent(const Ir& ir, const netlist::Module& mapped, int n_inputs,
                       const std::vector<std::string>& in_names,
                       const std::vector<std::string>& out_names) {
  IrSimulator gold(ir);
  logicsim::CycleSimulator netsim(mapped, lib());
  util::Rng rng(99);
  const int vectors = n_inputs <= 12 ? (1 << n_inputs) : 300;
  for (int v = 0; v < vectors; ++v) {
    for (int i = 0; i < n_inputs; ++i) {
      const bool bit = n_inputs <= 12 ? ((v >> i) & 1) != 0 : rng.chance(0.5);
      gold.set_input(in_names[static_cast<std::size_t>(i)], bit);
      netsim.set_input(mapped.find_net(in_names[static_cast<std::size_t>(i)]), bit);
    }
    gold.evaluate();
    netsim.evaluate();
    for (const auto& name : out_names) {
      EXPECT_EQ(netsim.value(mapped.find_net(name)), gold.output(name)) << name << " v=" << v;
    }
    gold.clock_edge();
    netsim.clock_edge();
  }
}

TEST(Mapper, AdderEquivalenceExhaustive) {
  Ir ir = adder_ir(4);
  SynthesisOptions opt;
  opt.multi_start = false;
  opt.enable_sizing = false;
  const SynthesisResult res = synthesize(ir, lib(), "add4", opt);
  res.module.validate();
  std::vector<std::string> ins;
  std::vector<std::string> outs;
  for (int i = 0; i < 4; ++i) {
    ins.push_back("a" + std::to_string(i));
    outs.push_back("s" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) ins.push_back("b" + std::to_string(i));
  expect_equivalent(ir, res.module, 8, ins, outs);
}

TEST(Mapper, UsesCompoundCells) {
  // A mux-rich circuit should map to MUX2/AOI-class cells, not just NAND2.
  Ir ir;
  const int s = ir.input("s");
  std::vector<std::string> outs;
  for (int i = 0; i < 4; ++i) {
    const int a = ir.input("a" + std::to_string(i));
    const int b = ir.input("b" + std::to_string(i));
    ir.output("z" + std::to_string(i), ir.mux(s, a, b));
  }
  SynthesisOptions opt;
  opt.multi_start = false;
  opt.enable_sizing = false;
  const SynthesisResult res = synthesize(ir, lib(), "muxes", opt);
  bool has_compound = false;
  for (const auto& inst : res.module.instances()) {
    const auto& family = lib().at(inst.cell).family;
    if (family == "MUX2" || family == "AOI21" || family == "OAI21") has_compound = true;
  }
  EXPECT_TRUE(has_compound);
  // Far fewer gates than the 4-NAND-per-mux decomposition.
  EXPECT_LT(res.gate_count, 16u);
}

TEST(Sizing, ImprovesOrPreservesCp) {
  Ir ir = adder_ir(8);
  SynthesisOptions no_size;
  no_size.multi_start = false;
  no_size.enable_sizing = false;
  SynthesisOptions with_size = no_size;
  with_size.enable_sizing = true;
  const double cp0 = synthesize(ir, lib(), "a", no_size).cp_ps;
  const SynthesisResult sized = synthesize(ir, lib(), "b", with_size);
  EXPECT_LE(sized.cp_ps, cp0 + 1e-9);
  EXPECT_GE(sized.sizing.upsizes, 0);
}

TEST(Sizing, PreservesFunction) {
  Ir ir = adder_ir(4);
  SynthesisOptions opt;
  opt.multi_start = false;
  const SynthesisResult res = synthesize(ir, lib(), "add4s", opt);
  std::vector<std::string> ins;
  std::vector<std::string> outs;
  for (int i = 0; i < 4; ++i) {
    ins.push_back("a" + std::to_string(i));
    outs.push_back("s" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) ins.push_back("b" + std::to_string(i));
  expect_equivalent(ir, res.module, 8, ins, outs);
}

TEST(Buffering, SplitsHighFanout) {
  // One input driving 30 inverters must get a buffer tree.
  Ir ir;
  const int a = ir.input("a");
  for (int i = 0; i < 30; ++i) ir.output("z" + std::to_string(i), ir.not_(a));
  SynthesisOptions opt;
  opt.multi_start = false;
  opt.enable_sizing = false;
  opt.buffering.max_fanout = 8;
  const SynthesisResult res = synthesize(ir, lib(), "fan", opt);
  int max_fanout = 0;
  for (netlist::NetId n = 0; n < res.module.net_count(); ++n) {
    if (n == res.module.clock()) continue;
    max_fanout = std::max(max_fanout, res.module.fanout_count(n));
  }
  EXPECT_LE(max_fanout, 8);
}

TEST(Synthesizer, AgedLibraryYieldsAgedAwareCp) {
  // Synthesizing against the aged library reports a CP measured against it,
  // which must exceed the same netlist's fresh CP.
  Ir ir = adder_ir(6);
  const auto& aged = factory().library(aging::AgingScenario::worst_case(10));
  SynthesisOptions opt;
  opt.multi_start = false;
  const SynthesisResult res = synthesize(ir, aged, "addaged", opt);
  const double fresh_cp = sta::Sta(res.module, lib()).critical_delay_ps();
  EXPECT_GT(res.cp_ps, fresh_cp);
}

}  // namespace
}  // namespace rw::synth
