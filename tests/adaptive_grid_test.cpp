#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "charlib/adaptive.hpp"
#include "charlib/factory.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "spice/stats.hpp"

namespace rw::charlib {
namespace {

/// Factory options for a fast single-OPC campaign on one inverter.
LibraryFactory::Options tiny_options(bool adaptive) {
  LibraryFactory::Options o;
  o.characterize.grid = OpcGrid::single(60.0, 4.0);
  o.cache_dir.clear();
  o.cell_subset = {"INV_X1"};
  o.characterize.adaptive.enabled = adaptive;
  o.characterize.adaptive.lattice_step = 0.2;
  o.characterize.adaptive.interp_tol_ps = 2.0;
  return o;
}

TEST(AdaptiveGeometry, OnLatticeAndBrackets) {
  EXPECT_TRUE(on_lattice(aging::AgingScenario{0.2, 0.4, 10.0, true}, 0.2));
  EXPECT_TRUE(on_lattice(aging::AgingScenario{0.0, 1.0, 10.0, true}, 0.2));
  EXPECT_FALSE(on_lattice(aging::AgingScenario{0.1, 0.4, 10.0, true}, 0.2));
  EXPECT_TRUE(on_lattice(aging::AgingScenario::fresh(), 0.2));

  // Interior target: 4 corners, bilinear weights summing to 1, λn fastest.
  const LatticeBracket b = lattice_bracket(aging::AgingScenario{0.1, 0.3, 10.0, true}, 0.2);
  ASSERT_EQ(b.corners.size(), 4u);
  EXPECT_DOUBLE_EQ(b.lambda_p_lo, 0.0);
  EXPECT_DOUBLE_EQ(b.lambda_p_hi, 0.2);
  EXPECT_DOUBLE_EQ(b.lambda_n_lo, 0.2);
  EXPECT_DOUBLE_EQ(b.lambda_n_hi, 0.4);
  double sum = 0.0;
  for (const double w : b.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Corner scenarios inherit the target's lifetime settings.
  for (const auto& c : b.corners) {
    EXPECT_DOUBLE_EQ(c.years, 10.0);
    EXPECT_TRUE(c.include_mobility);
  }

  // On-axis target collapses to 2 corners; on-lattice to 1 with weight 1.
  EXPECT_EQ(lattice_bracket(aging::AgingScenario{0.2, 0.3, 10.0, true}, 0.2).corners.size(), 2u);
  const LatticeBracket exact = lattice_bracket(aging::AgingScenario{0.2, 0.4, 10.0, true}, 0.2);
  ASSERT_EQ(exact.corners.size(), 1u);
  EXPECT_DOUBLE_EQ(exact.weights[0], 1.0);
}

TEST(AdaptiveGrid, CertifiedBoundCoversDenseReference) {
  // The contract of the certified bound: the directly characterized (dense
  // reference) value never differs from the interpolated value by more than
  // bound_ps, per entry. λ response is monotone per axis, so the true value
  // lies inside the corners' range.
  const aging::AgingScenario target{0.1, 0.3, 10.0, true};

  LibraryFactory adaptive(tiny_options(true));
  const liberty::Cell& interp = adaptive.cell("INV_X1", target);
  ASSERT_TRUE(interp.interp.has_value());
  const double bound = interp.interp->bound_ps;
  EXPECT_GE(bound, 0.0);
  EXPECT_DOUBLE_EQ(interp.interp->lambda_p_lo, 0.0);
  EXPECT_DOUBLE_EQ(interp.interp->lambda_n_hi, 0.4);

  LibraryFactory dense(tiny_options(false));
  const liberty::Cell& reference = dense.cell("INV_X1", target);
  ASSERT_FALSE(reference.interp.has_value());

  ASSERT_EQ(interp.arcs.size(), reference.arcs.size());
  for (std::size_t a = 0; a < interp.arcs.size(); ++a) {
    for (const bool rise : {true, false}) {
      const auto& it = rise ? interp.arcs[a].rise : interp.arcs[a].fall;
      const auto& rt = rise ? reference.arcs[a].rise : reference.arcs[a].fall;
      ASSERT_EQ(it.delay_ps.values().size(), rt.delay_ps.values().size());
      for (std::size_t e = 0; e < it.delay_ps.values().size(); ++e) {
        EXPECT_LE(std::fabs(it.delay_ps.values()[e] - rt.delay_ps.values()[e]), bound + 1e-6)
            << "arc " << a << (rise ? " rise" : " fall") << " delay entry " << e;
        EXPECT_LE(std::fabs(it.out_slew_ps.values()[e] - rt.out_slew_ps.values()[e]),
                  bound + 1e-6)
            << "arc " << a << (rise ? " rise" : " fall") << " slew entry " << e;
      }
    }
  }
}

TEST(AdaptiveGrid, InterpolationServesOffLatticeAndCounts) {
  reset_adaptive_counters();
  LibraryFactory factory(tiny_options(true));
  const aging::AgingScenario target{0.1, 0.1, 10.0, true};
  const liberty::Cell& cell = factory.cell("INV_X1", target);
  ASSERT_TRUE(cell.interp.has_value());
  EXPECT_LE(cell.interp->bound_ps, factory.options().characterize.adaptive.interp_tol_ps);

  const AdaptiveCounters c = adaptive_counters();
  EXPECT_EQ(c.cells_interpolated, 1u);
  EXPECT_EQ(c.corners_refined, 0u);
  // INV has one arc with rise+fall on a 1-point grid: 2 solved tasks avoided.
  EXPECT_EQ(c.solves_avoided_by_interp, 2u);

  // Lattice corners themselves were characterized directly (no marker).
  EXPECT_FALSE(
      factory.cell("INV_X1", aging::AgingScenario{0.0, 0.0, 10.0, true}).interp.has_value());
  EXPECT_FALSE(
      factory.cell("INV_X1", aging::AgingScenario{0.2, 0.2, 10.0, true}).interp.has_value());
}

TEST(AdaptiveGrid, ExceededBoundTriggersRefinement) {
  // With an impossibly tight tolerance, every off-lattice corner must be
  // refined: characterized directly, no rw_interp marker, counter bumped.
  reset_adaptive_counters();
  LibraryFactory::Options opts = tiny_options(true);
  opts.characterize.adaptive.interp_tol_ps = 1e-9;
  LibraryFactory factory(opts);
  const liberty::Cell& cell = factory.cell("INV_X1", aging::AgingScenario{0.1, 0.3, 10.0, true});
  EXPECT_FALSE(cell.interp.has_value());
  const AdaptiveCounters c = adaptive_counters();
  EXPECT_EQ(c.corners_refined, 1u);
  EXPECT_EQ(c.cells_interpolated, 0u);
}

TEST(AdaptiveGrid, DiskCacheKeyedByPolicyAndResumes) {
  const std::string dir = std::filesystem::temp_directory_path() / "rw_test_cache_adaptive";
  std::filesystem::remove_all(dir);
  LibraryFactory::Options opts = tiny_options(true);
  opts.cache_dir = dir;
  const aging::AgingScenario target{0.1, 0.1, 10.0, true};

  double bound_first = 0.0;
  {
    LibraryFactory factory(opts);
    const liberty::Cell& cell = factory.cell("INV_X1", target);
    ASSERT_TRUE(cell.interp.has_value());
    bound_first = cell.interp->bound_ps;
    // The cache directory is keyed with the adaptive policy tag, so exact
    // and interpolated caches can never be confused for each other.
    EXPECT_NE(factory.manifest_path().find("adaptive-s0.20-t2.00"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(
        std::string(dir) + "/1x1-adaptive-s0.20-t2.00/" + target.id() + "/INV_X1.lib"));
  }
  {
    // A resumed factory serves the pair from disk — marker intact, zero
    // SPICE (the solver counters stay flat).
    LibraryFactory::Options resumed = opts;
    resumed.resume = true;
    LibraryFactory factory(resumed);
    spice::reset_solver_counters();
    const liberty::Cell& cell = factory.cell("INV_X1", target);
    ASSERT_TRUE(cell.interp.has_value());
    EXPECT_NEAR(cell.interp->bound_ps, bound_first, 1e-5);  // Liberty text precision
    EXPECT_EQ(spice::solver_counters().transient_attempts, 0u);
    EXPECT_EQ(spice::solver_counters().dc_solves, 0u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rw::charlib
