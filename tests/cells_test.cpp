#include <gtest/gtest.h>

#include <set>

#include "cells/catalog.hpp"
#include "cells/function.hpp"
#include "cells/topology.hpp"

namespace rw::cells {
namespace {

const device::Technology& tech() { return device::ptm45(); }

TEST(SpExpr, ConductsSeriesParallel) {
  const SpExpr e = SpExpr::parallel({SpExpr::series({SpExpr::leaf("A"), SpExpr::leaf("B")}),
                                     SpExpr::leaf("C")});
  const auto on = [](bool a, bool b, bool c) {
    return [=](const std::string& s) { return s == "A" ? a : s == "B" ? b : c; };
  };
  EXPECT_TRUE(e.conducts(on(true, true, false)));
  EXPECT_TRUE(e.conducts(on(false, false, true)));
  EXPECT_FALSE(e.conducts(on(true, false, false)));
}

TEST(SpExpr, DualSwapsTopology) {
  const SpExpr e = SpExpr::series({SpExpr::leaf("A"), SpExpr::leaf("B")});
  const SpExpr d = e.dual();
  EXPECT_EQ(d.kind(), SpExpr::Kind::kParallel);
  // Dual of dual is the original structure.
  EXPECT_EQ(d.dual().kind(), SpExpr::Kind::kSeries);
}

TEST(SpExpr, MinPathLen) {
  const SpExpr e = SpExpr::parallel({SpExpr::series({SpExpr::leaf("A"), SpExpr::leaf("B")}),
                                     SpExpr::leaf("C")});
  EXPECT_EQ(e.min_path_len(), 1);
  EXPECT_EQ(e.dual().min_path_len(), 2);  // series(parallel(A,B), C) -> min 2
}

TEST(Catalog, HasExpectedSizeAndUniqueNames) {
  std::set<std::string> names;
  for (const auto& c : catalog()) EXPECT_TRUE(names.insert(c.name).second) << c.name;
  EXPECT_GE(catalog().size(), 55u);  // Nangate-class library breadth
}

TEST(Catalog, TruthTables) {
  EXPECT_EQ(truth_table(find_cell("INV_X1")), 0b01u);
  EXPECT_EQ(truth_table(find_cell("BUF_X1")), 0b10u);
  EXPECT_EQ(truth_table(find_cell("NAND2_X1")), 0b0111u);
  EXPECT_EQ(truth_table(find_cell("NOR2_X1")), 0b0001u);
  EXPECT_EQ(truth_table(find_cell("AND2_X1")), 0b1000u);
  EXPECT_EQ(truth_table(find_cell("OR2_X1")), 0b1110u);
  EXPECT_EQ(truth_table(find_cell("XOR2_X1")), 0b0110u);
  EXPECT_EQ(truth_table(find_cell("XNOR2_X1")), 0b1001u);
}

TEST(Catalog, Mux2Function) {
  // inputs {A, B, S}: Z = A when S=0, B when S=1.
  const CellSpec& mux = find_cell("MUX2_X1");
  EXPECT_TRUE(eval_cell(mux, {true, false, false}));
  EXPECT_FALSE(eval_cell(mux, {true, false, true}));
  EXPECT_FALSE(eval_cell(mux, {false, true, false}));
  EXPECT_TRUE(eval_cell(mux, {false, true, true}));
}

TEST(Catalog, ComplexGateFunctions) {
  // AOI21: Z = !(A·B + C), OAI21: Z = !((A+B)·C).
  const CellSpec& aoi = find_cell("AOI21_X1");
  EXPECT_FALSE(eval_cell(aoi, {true, true, false}));
  EXPECT_FALSE(eval_cell(aoi, {false, false, true}));
  EXPECT_TRUE(eval_cell(aoi, {true, false, false}));
  const CellSpec& oai = find_cell("OAI21_X1");
  EXPECT_FALSE(eval_cell(oai, {true, false, true}));
  EXPECT_TRUE(eval_cell(oai, {true, true, false}));
  EXPECT_TRUE(eval_cell(oai, {false, false, true}));
}

TEST(Catalog, Unateness) {
  EXPECT_EQ(arc_unateness(find_cell("INV_X1"), "A"), -1);
  EXPECT_EQ(arc_unateness(find_cell("BUF_X1"), "A"), 1);
  EXPECT_EQ(arc_unateness(find_cell("NAND2_X1"), "A"), -1);
  EXPECT_EQ(arc_unateness(find_cell("AND2_X1"), "B"), 1);
  EXPECT_EQ(arc_unateness(find_cell("XOR2_X1"), "A"), 0);
  EXPECT_EQ(arc_unateness(find_cell("MUX2_X1"), "S"), 0);
}

TEST(Materialize, InverterTransistors) {
  const auto fets = materialize(find_cell("INV_X1"), tech());
  ASSERT_EQ(fets.size(), 2u);
  int n_nmos = 0;
  for (const auto& t : fets) {
    EXPECT_EQ(t.gate, "A");
    if (t.type == device::MosType::kNmos) {
      ++n_nmos;
      EXPECT_EQ(t.source, "GND");
      EXPECT_DOUBLE_EQ(t.width_um, tech().nmos_unit_width_um);
    } else {
      EXPECT_EQ(t.source, "VDD");
      EXPECT_DOUBLE_EQ(t.width_um, tech().pmos_unit_width_um);
    }
    EXPECT_EQ(t.drain, "Z");
  }
  EXPECT_EQ(n_nmos, 1);
}

TEST(Materialize, StackUpsizing) {
  // NAND3 pull-down stack of 3: each nMOS 3x unit width; pull-up parallel
  // pMOS stay at unit width.
  for (const auto& t : materialize(find_cell("NAND3_X1"), tech())) {
    if (t.type == device::MosType::kNmos) {
      EXPECT_DOUBLE_EQ(t.width_um, 3.0 * tech().nmos_unit_width_um);
    } else {
      EXPECT_DOUBLE_EQ(t.width_um, tech().pmos_unit_width_um);
    }
  }
}

TEST(Materialize, DriveScalesWidths) {
  const auto x1 = materialize(find_cell("NAND2_X1"), tech());
  const auto x4 = materialize(find_cell("NAND2_X4"), tech());
  ASSERT_EQ(x1.size(), x4.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x4[i].width_um, 4.0 * x1[i].width_um, 1e-9);
  }
}

TEST(Materialize, DffStructure) {
  const auto fets = materialize(find_cell("DFF_X1"), tech());
  EXPECT_EQ(fets.size(), 22u);  // master-slave TG flop
  bool drives_q = false;
  for (const auto& t : fets) {
    if (t.drain == "Q" || t.source == "Q") drives_q = true;
  }
  EXPECT_TRUE(drives_q);
}

TEST(PinCap, GrowsWithFanInCount) {
  // NAND4's A pin sees a 4-high stack (wider device) vs NAND2's A pin.
  const double c2 = pin_input_cap_ff(find_cell("NAND2_X1"), tech(), "A");
  const double c4 = pin_input_cap_ff(find_cell("NAND4_X1"), tech(), "A");
  EXPECT_GT(c4, c2);
  EXPECT_GT(c2, 0.5);
  EXPECT_LT(c2, 5.0);
}

TEST(Area, MonotoneInDrive) {
  EXPECT_GT(cell_area_um2(find_cell("INV_X4"), tech()),
            cell_area_um2(find_cell("INV_X1"), tech()));
  EXPECT_GT(cell_area_um2(find_cell("NAND4_X1"), tech()),
            cell_area_um2(find_cell("NAND2_X1"), tech()));
}

// Property: every combinational catalog cell evaluates consistently with its
// truth table for every input pattern (switch-level model self-consistency).
TEST(Catalog, TruthTableConsistencyProperty) {
  for (const auto& spec : catalog()) {
    if (spec.is_flop) continue;
    const std::uint64_t tt = truth_table(spec);
    const auto n = spec.inputs.size();
    for (std::uint64_t p = 0; p < (1ULL << n); ++p) {
      std::vector<bool> in(n);
      for (std::size_t i = 0; i < n; ++i) in[i] = ((p >> i) & 1ULL) != 0;
      EXPECT_EQ(eval_cell(spec, in), ((tt >> p) & 1ULL) != 0) << spec.name << " pattern " << p;
    }
  }
}

// Property: duals produce complementary networks — for any input pattern,
// exactly one of pull-down / pull-up conducts (no crowbar, no float).
TEST(Catalog, ComplementaryNetworksProperty) {
  for (const auto& spec : catalog()) {
    if (spec.is_flop) continue;
    for (const auto& stage : spec.stages) {
      const auto signals = stage.pulldown.signals();
      for (std::uint64_t p = 0; p < (1ULL << signals.size()); ++p) {
        const auto on = [&](const std::string& s) {
          for (std::size_t i = 0; i < signals.size(); ++i) {
            if (signals[i] == s) return ((p >> i) & 1ULL) != 0;
          }
          ADD_FAILURE() << "unknown signal " << s;
          return false;
        };
        const bool pd = stage.pulldown.conducts(on);
        const bool pu = stage.pulldown.dual().conducts([&](const std::string& s) { return !on(s); });
        EXPECT_NE(pd, pu) << spec.name << " stage " << stage.out << " pattern " << p;
      }
    }
  }
}

}  // namespace
}  // namespace rw::cells
