#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "charlib/characterizer.hpp"
#include "charlib/factory.hpp"
#include "spice/solver.hpp"
#include "cells/catalog.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {
namespace {

CharacterizeOptions coarse_options() {
  CharacterizeOptions o;
  o.grid = OpcGrid::coarse();
  return o;
}

TEST(OpcGrid, PaperGridBounds) {
  const OpcGrid g = OpcGrid::paper();
  EXPECT_EQ(g.size(), 49u);
  EXPECT_DOUBLE_EQ(g.slews_ps.front(), 5.0);
  EXPECT_DOUBLE_EQ(g.slews_ps.back(), 947.0);
  EXPECT_DOUBLE_EQ(g.loads_ff.front(), 0.5);
  EXPECT_DOUBLE_EQ(g.loads_ff.back(), 20.0);
  EXPECT_EQ(g.tag(), "7x7");
}

TEST(Characterizer, InverterArcShapes) {
  const auto cell = characterize_cell(cells::find_cell("INV_X1"),
                                      aging::AgingScenario::fresh(), coarse_options());
  ASSERT_EQ(cell.arcs.size(), 1u);
  const auto& arc = cell.arcs[0];
  EXPECT_EQ(arc.sense, liberty::TimingSense::kNegativeUnate);
  ASSERT_FALSE(arc.rise.empty());
  ASSERT_FALSE(arc.fall.empty());
  // Delay grows with load at fixed slew (fundamental NLDM property).
  const auto& g = coarse_options().grid;
  for (std::size_t s = 0; s < g.slews_ps.size(); ++s) {
    for (std::size_t l = 1; l < g.loads_ff.size(); ++l) {
      EXPECT_GT(arc.rise.delay_ps.at(s, l), arc.rise.delay_ps.at(s, l - 1))
          << "slew " << g.slews_ps[s];
    }
  }
  // Output slew also grows with load.
  EXPECT_GT(arc.rise.out_slew_ps.at(0, 2), arc.rise.out_slew_ps.at(0, 0));
  // Pin capacitance and area are populated.
  EXPECT_GT(cell.input_cap_ff("A"), 0.3);
  EXPECT_GT(cell.area_um2, 0.2);
}

TEST(Characterizer, WorstCaseAgingSlowsTypicalOpc) {
  const auto& spec = cells::find_cell("NAND2_X1");
  CharacterizeOptions o;
  o.grid = OpcGrid::single(60.0, 4.0);
  const auto fresh = characterize_cell(spec, aging::AgingScenario::fresh(), o);
  const auto aged = characterize_cell(spec, aging::AgingScenario::worst_case(10), o);
  for (std::size_t a = 0; a < fresh.arcs.size(); ++a) {
    EXPECT_GT(aged.arcs[a].rise.delay_ps.at(0, 0), fresh.arcs[a].rise.delay_ps.at(0, 0));
  }
}

TEST(Characterizer, NorFallDelayImprovesAtLargeSlew) {
  // The paper's Fig. 1(b) effect: NBTI weakens the opposing pull-up, so the
  // NOR's fall delay *improves* under aging for slow rising inputs.
  const auto& spec = cells::find_cell("NOR2_X1");
  CharacterizeOptions o;
  o.grid = OpcGrid::single(947.0, 0.5);
  const auto fresh = characterize_cell(spec, aging::AgingScenario::fresh(), o);
  const auto aged = characterize_cell(spec, aging::AgingScenario::worst_case(10), o);
  EXPECT_LT(aged.arcs[0].fall.delay_ps.at(0, 0), fresh.arcs[0].fall.delay_ps.at(0, 0));
}

TEST(Characterizer, FlopClkToQAndSetup) {
  const auto cell = characterize_cell(cells::find_cell("DFF_X1"),
                                      aging::AgingScenario::fresh(), coarse_options());
  EXPECT_TRUE(cell.is_flop);
  ASSERT_EQ(cell.arcs.size(), 1u);
  EXPECT_TRUE(cell.arcs[0].clocked);
  EXPECT_EQ(cell.arcs[0].related_pin, "CK");
  // CK->Q delay is positive and reasonable at a mid OPC.
  const double clkq = cell.arcs[0].rise.delay_ps.lookup(40.0, 4.0);
  EXPECT_GT(clkq, 10.0);
  EXPECT_LT(clkq, 300.0);
  EXPECT_GT(cell.setup_ps, 0.0);
  EXPECT_LT(cell.setup_ps, 405.0);
  EXPECT_TRUE(cell.find_pin("CK")->is_clock);
}

TEST(Factory, MemoizesAndHonorsSubset) {
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::coarse();
  opts.cache_dir.clear();  // no disk cache for this test
  opts.cell_subset = {"INV_X1", "INV_X2", "NAND2_X1", "DFF_X1"};
  LibraryFactory factory(opts);
  const auto& lib = factory.library(aging::AgingScenario::fresh());
  EXPECT_EQ(lib.size(), 4u);
  // Second call returns the same object (memoized).
  EXPECT_EQ(&factory.library(aging::AgingScenario::fresh()), &lib);
}

TEST(Factory, DiskCacheRoundTrip) {
  const std::string dir = std::filesystem::temp_directory_path() / "rw_test_cache";
  std::filesystem::remove_all(dir);
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::coarse();
  opts.cache_dir = dir;
  opts.cell_subset = {"INV_X1"};
  double delay_first = 0.0;
  {
    LibraryFactory factory(opts);
    delay_first =
        factory.cell("INV_X1", aging::AgingScenario::fresh()).arcs[0].rise.delay_ps.at(0, 0);
    EXPECT_TRUE(std::filesystem::exists(std::string(dir) + "/3x3/fresh/INV_X1.lib"));
  }
  {
    // Fresh factory must hit the disk cache and reproduce the exact value.
    LibraryFactory factory(opts);
    // The Liberty text format carries 4 decimals; equality holds to that.
    EXPECT_NEAR(
        factory.cell("INV_X1", aging::AgingScenario::fresh()).arcs[0].rise.delay_ps.at(0, 0),
        delay_first, 1e-3);
  }
  std::filesystem::remove_all(dir);
}

TEST(Factory, MergedLibraryUsesIndexedNames) {
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::coarse();
  opts.cache_dir.clear();
  opts.cell_subset = {"INV_X1"};
  LibraryFactory factory(opts);
  const auto merged = factory.merged({aging::AgingScenario{0.4, 0.6, 10.0, true},
                                      aging::AgingScenario{1.0, 1.0, 10.0, true}});
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_NE(merged.find("INV_X1_0.40_0.60"), nullptr);
  EXPECT_NE(merged.find("INV_X1_1.00_1.00"), nullptr);
}

/// Exact (bitwise) equality of every NLDM table and constraint of two cells.
void expect_cells_identical(const liberty::Cell& a, const liberty::Cell& b) {
  ASSERT_EQ(a.name, b.name);
  ASSERT_EQ(a.arcs.size(), b.arcs.size());
  for (std::size_t i = 0; i < a.arcs.size(); ++i) {
    EXPECT_EQ(a.arcs[i].rise.delay_ps.values(), b.arcs[i].rise.delay_ps.values())
        << a.name << " arc " << i << " rise delay";
    EXPECT_EQ(a.arcs[i].rise.out_slew_ps.values(), b.arcs[i].rise.out_slew_ps.values())
        << a.name << " arc " << i << " rise slew";
    EXPECT_EQ(a.arcs[i].fall.delay_ps.values(), b.arcs[i].fall.delay_ps.values())
        << a.name << " arc " << i << " fall delay";
    EXPECT_EQ(a.arcs[i].fall.out_slew_ps.values(), b.arcs[i].fall.out_slew_ps.values())
        << a.name << " arc " << i << " fall slew";
  }
  EXPECT_EQ(a.setup_ps, b.setup_ps);
  EXPECT_EQ(a.hold_ps, b.hold_ps);
  EXPECT_EQ(a.area_um2, b.area_um2);
  for (const auto& pin : a.pins) {
    EXPECT_EQ(pin.cap_ff, b.find_pin(pin.name)->cap_ff);
  }
}

TEST(Factory, CharacterizationIsDeterministicAcrossThreadCounts) {
  // The hard guarantee behind the parallel engine (the flattened task queue
  // plus the once-per-arc warm-start seed): 1-, 2-, and 8-thread
  // characterizations produce bitwise-identical NLDM tables.
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::coarse();
  opts.cache_dir.clear();
  opts.cell_subset = {"INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1", "DFF_X1"};

  util::set_shared_thread_count(1);
  LibraryFactory serial(opts);
  const liberty::Library lib_1t = serial.library(aging::AgingScenario::worst_case(10));

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    util::set_shared_thread_count(threads);
    LibraryFactory parallel(opts);
    const liberty::Library lib_nt = parallel.library(aging::AgingScenario::worst_case(10));
    ASSERT_EQ(lib_1t.size(), lib_nt.size()) << threads << " threads";
    for (const auto& cell : lib_1t.cells()) {
      expect_cells_identical(cell, lib_nt.at(cell.name));
    }
  }
  util::set_shared_thread_count(0);
}

TEST(Factory, WarmAndColdStartsAgreeWithinSolverTolerance) {
  // The per-arc DC warm start is an accelerator, not an approximation: both
  // paths converge the same Newton system to the same tolerances, so the
  // NLDM tables must agree to well under a picosecond.
  LibraryFactory::Options warm_opts;
  warm_opts.characterize.grid = OpcGrid::coarse();
  warm_opts.cache_dir.clear();
  warm_opts.cell_subset = {"INV_X1", "NAND2_X1", "DFF_X1"};
  LibraryFactory::Options cold_opts = warm_opts;
  cold_opts.characterize.warm_start_dc = false;

  LibraryFactory warm(warm_opts);
  LibraryFactory cold(cold_opts);
  const auto scenario = aging::AgingScenario::worst_case(10);
  const liberty::Library& warm_lib = warm.library(scenario);
  const liberty::Library& cold_lib = cold.library(scenario);

  ASSERT_EQ(warm_lib.size(), cold_lib.size());
  for (const auto& wc : warm_lib.cells()) {
    const liberty::Cell& cc = cold_lib.at(wc.name);
    ASSERT_EQ(wc.arcs.size(), cc.arcs.size());
    for (std::size_t i = 0; i < wc.arcs.size(); ++i) {
      for (const bool rise : {true, false}) {
        const auto& wt = rise ? wc.arcs[i].rise : wc.arcs[i].fall;
        const auto& ct = rise ? cc.arcs[i].rise : cc.arcs[i].fall;
        ASSERT_EQ(wt.delay_ps.values().size(), ct.delay_ps.values().size());
        for (std::size_t e = 0; e < wt.delay_ps.values().size(); ++e) {
          EXPECT_NEAR(wt.delay_ps.values()[e], ct.delay_ps.values()[e], 0.5)
              << wc.name << " arc " << i << (rise ? " rise" : " fall") << " entry " << e;
          EXPECT_NEAR(wt.out_slew_ps.values()[e], ct.out_slew_ps.values()[e], 0.5)
              << wc.name << " arc " << i << (rise ? " rise" : " fall") << " entry " << e;
        }
      }
    }
    EXPECT_NEAR(wc.setup_ps, cc.setup_ps, 1.0) << wc.name;
  }
}

TEST(Factory, ConcurrentCallersDeduplicateAndAgree) {
  // Many threads asking the same factory for overlapping cells: no crash
  // (TSan-clean) and everyone sees the same memoized objects.
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::single(60.0, 4.0);
  opts.cache_dir.clear();
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  LibraryFactory factory(opts);

  std::vector<const liberty::Cell*> seen(8, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(seen.size());
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&factory, &seen, t] {
      const auto& name = t % 2 == 0 ? "INV_X1" : "NAND2_X1";
      seen[t] = &factory.cell(name, aging::AgingScenario::fresh());
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 2; t < seen.size(); ++t) {
    EXPECT_EQ(seen[t], seen[t % 2]);  // same memoized object, characterized once
  }
}

TEST(Factory, ToleratesCorruptDiskCacheEntries) {
  const std::string dir = std::filesystem::temp_directory_path() / "rw_test_cache_corrupt";
  std::filesystem::remove_all(dir);
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::single(60.0, 4.0);
  opts.cache_dir = dir;
  opts.cell_subset = {"INV_X1"};

  const std::string path = std::string(dir) + "/1x1/fresh/INV_X1.lib";
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  {
    std::ofstream out(path);
    out << "library (rw_cache_fresh) {\n  cell (INV_X1) {\n";  // truncated mid-write
  }

  LibraryFactory factory(opts);
  const auto& cell = factory.cell("INV_X1", aging::AgingScenario::fresh());
  ASSERT_EQ(cell.arcs.size(), 1u);
  EXPECT_GT(cell.arcs[0].rise.delay_ps.at(0, 0), 0.0);  // re-characterized, not failed
  // The rewritten cache entry is complete and parses on the next run (the
  // Liberty text format carries 4 decimals, hence the tolerance).
  LibraryFactory again(opts);
  EXPECT_NEAR(again.cell("INV_X1", aging::AgingScenario::fresh()).arcs[0].rise.delay_ps.at(0, 0),
              cell.arcs[0].rise.delay_ps.at(0, 0), 1e-3);
  std::filesystem::remove_all(dir);
}

TEST(Factory, MergedReusesCellCacheWithoutLibraryMemo) {
  LibraryFactory::Options opts;
  opts.characterize.grid = OpcGrid::single(60.0, 4.0);
  opts.cache_dir.clear();
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  LibraryFactory factory(opts);

  // Warm one corner through cell(); merge over two corners reuses it.
  const aging::AgingScenario a{0.4, 0.6, 10.0, true};
  const aging::AgingScenario b{1.0, 1.0, 10.0, true};
  const auto& warm = factory.cell("INV_X1", a);
  const auto merged = factory.merged({a, b});
  EXPECT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.find("INV_X1_0.40_0.60")->arcs[0].rise.delay_ps.values(),
            warm.arcs[0].rise.delay_ps.values());
  // A second merge is pure cache assembly and yields the same tables.
  const auto merged2 = factory.merged({a, b});
  ASSERT_EQ(merged2.size(), merged.size());
  for (const auto& cell : merged.cells()) {
    EXPECT_EQ(merged2.at(cell.name).arcs[0].rise.delay_ps.values(),
              cell.arcs[0].rise.delay_ps.values());
  }
}

TEST(AppendCellInstance, ChainsTwoCells) {
  // Build INV -> INV chain at transistor level and verify DC logic levels.
  const auto& spec = cells::find_cell("INV_X1");
  const CharacterizeOptions o = coarse_options();
  spice::Circuit c;
  const auto vdd = c.add_node("VDD");
  c.add_source(vdd, spice::Pwl::dc(o.tech.vdd_v));
  const auto in = c.add_node("IN");
  c.add_source(in, spice::Pwl::dc(0.0));
  const auto mid = append_cell_instance(c, spec, aging::AgingScenario::fresh(), o, "u1:", vdd,
                                        {{"A", in}});
  const auto out = append_cell_instance(c, spec, aging::AgingScenario::fresh(), o, "u2:", vdd,
                                        {{"A", mid}});
  const auto v = spice::dc_operating_point(c);
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], o.tech.vdd_v, 0.05);
  EXPECT_NEAR(v[static_cast<std::size_t>(out)], 0.0, 0.05);
}

}  // namespace
}  // namespace rw::charlib
