#include <gtest/gtest.h>

#include <cmath>

#include "device/ptm45.hpp"
#include "spice/measure.hpp"
#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace rw::spice {
namespace {

const device::Technology& tech() { return device::ptm45(); }

TEST(Pwl, RampAndValue) {
  const Pwl ramp = Pwl::ramp(100.0, 80.0, 0.0, 1.2);  // 80 ps 10-90% slew -> 100 ps full ramp
  EXPECT_DOUBLE_EQ(ramp.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ramp.value(100.0), 0.0);
  EXPECT_NEAR(ramp.value(150.0), 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(ramp.value(500.0), 1.2);
}

TEST(Pwl, NextBreakpoint) {
  const Pwl p({{10.0, 0.0}, {20.0, 1.0}});
  ASSERT_TRUE(p.next_breakpoint(0.0).has_value());
  EXPECT_DOUBLE_EQ(*p.next_breakpoint(0.0), 10.0);
  EXPECT_DOUBLE_EQ(*p.next_breakpoint(10.0), 20.0);
  EXPECT_FALSE(p.next_breakpoint(20.0).has_value());
}

TEST(Circuit, RejectsDuplicateSourcesAndNodes) {
  Circuit c;
  const NodeId a = c.add_node("a");
  EXPECT_THROW(c.add_node("a"), std::invalid_argument);
  c.add_source(a, Pwl::dc(1.0));
  EXPECT_THROW(c.add_source(a, Pwl::dc(0.5)), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor(a, kGround, -1.0), std::invalid_argument);
  EXPECT_THROW(c.add_resistor(a, kGround, 0.0), std::invalid_argument);
}

TEST(Solver, ResistorDividerDc) {
  Circuit c;
  const NodeId vin = c.add_node("vin");
  const NodeId mid = c.add_node("mid");
  c.add_source(vin, Pwl::dc(1.0));
  c.add_resistor(vin, mid, 1.0);
  c.add_resistor(mid, kGround, 3.0);
  const auto v = dc_operating_point(c);
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 0.75, 1e-5);
}

TEST(Solver, RcStepResponseMatchesAnalytic) {
  // 1 kΩ * 1 fF = 1 ps time constant; step at t=0 via initial condition:
  // drive with a source that steps at t=100 ps.
  Circuit c;
  const NodeId vin = c.add_node("vin");
  const NodeId out = c.add_node("out");
  c.add_source(vin, Pwl({{0.0, 0.0}, {100.0, 0.0}, {100.001, 1.0}}));
  c.add_resistor(vin, out, 2.0);   // 2 kΩ
  c.add_capacitor(out, kGround, 5.0);  // 5 fF -> tau = 10 ps
  TransientOptions opt;
  opt.t_stop_ps = 200.0;
  opt.dt_max_ps = 0.5;
  const auto result = simulate_transient(c, opt, {out});
  const Waveform& w = result.waveform(out);
  // Compare against 1 - exp(-t/tau) at several points.
  for (double t : {105.0, 110.0, 120.0, 150.0}) {
    const double expected = 1.0 - std::exp(-(t - 100.0) / 10.0);
    EXPECT_NEAR(w.at(t), expected, 0.02) << "at t=" << t;
  }
}

Circuit inverter_bench(double slew_ps, double load_ff, bool rising_input, NodeId& in, NodeId& out) {
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  in = c.add_node("in");
  out = c.add_node("out");
  c.add_source(vdd, Pwl::dc(tech().vdd_v));
  const double v0 = rising_input ? 0.0 : tech().vdd_v;
  const double v1 = rising_input ? tech().vdd_v : 0.0;
  c.add_source(in, Pwl::ramp(50.0, slew_ps, v0, v1));
  c.add_mosfet(device::Mosfet(tech().pmos, 0.8), in, out, vdd);
  c.add_mosfet(device::Mosfet(tech().nmos, 0.4), in, out, kGround);
  c.add_capacitor(out, kGround, load_ff);
  return c;
}

TEST(Solver, InverterSwitches) {
  NodeId in = -1;
  NodeId out = -1;
  Circuit c = inverter_bench(40.0, 4.0, /*rising_input=*/true, in, out);
  TransientOptions opt;
  opt.t_stop_ps = 500.0;
  const auto result = simulate_transient(c, opt, {out});
  const Waveform& w = result.waveform(out);
  EXPECT_NEAR(w.value(0), tech().vdd_v, 0.05);  // starts high (input low)
  EXPECT_NEAR(w.back_value(), 0.0, 0.05);       // ends low
}

TEST(Solver, InverterDelayIncreasesWithLoad) {
  double prev = -1e9;
  for (double load : {1.0, 4.0, 10.0, 20.0}) {
    NodeId in = -1;
    NodeId out = -1;
    Circuit c = inverter_bench(40.0, load, true, in, out);
    TransientOptions opt;
    opt.t_stop_ps = 800.0;
    const auto result = simulate_transient(c, opt, {out});
    const auto timing = measure_edge(result.waveform(out), 50.0 + 25.0, false, tech().vdd_v);
    ASSERT_TRUE(timing.has_value()) << "load " << load;
    EXPECT_GT(timing->delay_ps, prev);
    prev = timing->delay_ps;
  }
}

TEST(Solver, InverterOutputSlewIncreasesWithLoad) {
  double prev = 0.0;
  for (double load : {1.0, 4.0, 16.0}) {
    NodeId in = -1;
    NodeId out = -1;
    Circuit c = inverter_bench(20.0, load, true, in, out);
    TransientOptions opt;
    opt.t_stop_ps = 800.0;
    const auto result = simulate_transient(c, opt, {out});
    const auto timing = measure_edge(result.waveform(out), 62.5, false, tech().vdd_v);
    ASSERT_TRUE(timing.has_value());
    EXPECT_GT(timing->slew_ps, prev);
    prev = timing->slew_ps;
  }
}

TEST(Solver, AgedInverterIsSlower) {
  // Worst-case NBTI on the pull-up: output *rise* must slow down.
  auto bench = [&](device::Degradation deg_p) {
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId in = c.add_node("in");
    const NodeId out = c.add_node("out");
    c.add_source(vdd, Pwl::dc(tech().vdd_v));
    c.add_source(in, Pwl::ramp(50.0, 40.0, tech().vdd_v, 0.0));  // falling input -> rising out
    c.add_mosfet(device::Mosfet(tech().pmos, 0.8, deg_p), in, out, vdd);
    c.add_mosfet(device::Mosfet(tech().nmos, 0.4), in, out, kGround);
    c.add_capacitor(out, kGround, 4.0);
    TransientOptions opt;
    opt.t_stop_ps = 600.0;
    const auto result = simulate_transient(c, opt, {out});
    const auto timing = measure_edge(result.waveform(out), 75.0, true, tech().vdd_v);
    EXPECT_TRUE(timing.has_value());
    return timing->delay_ps;
  };
  const double fresh = bench({});
  const double aged = bench({0.045, 0.93});
  EXPECT_GT(aged, fresh * 1.05);
}

TEST(Waveform, CrossingQueries) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(10.0, 1.0);
  w.append(20.0, 0.2);
  w.append(30.0, 1.0);
  const auto first = w.first_crossing(0.5, true);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(*first, 5.0);
  const auto last = w.last_crossing(0.5, true);
  ASSERT_TRUE(last.has_value());
  EXPECT_NEAR(*last, 23.75, 1e-9);
  EXPECT_FALSE(w.first_crossing(2.0, true).has_value());
}

TEST(Measure, RejectsNonSettlingOutput) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(100.0, 0.6);  // stuck mid-rail
  EXPECT_FALSE(measure_edge(w, 10.0, true, 1.2).has_value());
}

}  // namespace
}  // namespace rw::spice
