#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cells/catalog.hpp"
#include "charlib/factory.hpp"
#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/guardband_flow.hpp"
#include "logicsim/activity.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/builder.hpp"
#include "stress/analyzer.hpp"
#include "stress/interval.hpp"
#include "stress/stacks.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

namespace rw::stress {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "INV_X2", "NAND2_X1", "NAND2_X2", "NOR2_X1",
                     "AND2_X1", "XOR2_X1", "BUF_X2",  "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}

const liberty::Library& lib() { return factory().library(aging::AgingScenario::fresh()); }

// ---------------------------------------------------------------- interval --

TEST(Interval, BasicAlgebra) {
  const Interval v{0.2, 0.7};
  EXPECT_DOUBLE_EQ(v.complement().lo, 0.3);
  EXPECT_DOUBLE_EQ(v.complement().hi, 0.8);
  EXPECT_TRUE(v.contains(0.2));
  EXPECT_TRUE(v.contains(0.7));
  EXPECT_FALSE(v.contains(0.71));
  EXPECT_TRUE(Interval::full().contains(v));
  EXPECT_FALSE(v.is_constant());
  EXPECT_TRUE(Interval::point(1.0).is_constant());
  const Interval h = Interval{0.0, 0.3}.hull(Interval{0.5, 0.6});
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 0.6);
  const Interval avg = average(2, [](std::size_t i) {
    return i == 0 ? Interval{0.0, 0.5} : Interval{1.0, 1.0};
  });
  EXPECT_DOUBLE_EQ(avg.lo, 0.5);
  EXPECT_DOUBLE_EQ(avg.hi, 0.75);
  EXPECT_EQ(v.str(), "[0.2000, 0.7000]");
}

// ---------------------------------------------------------------- transfer --

constexpr std::uint64_t kAnd2Truth = 0b1000;  // bit p set iff both inputs 1

TEST(Transfer, IndependentIsExactForAnd) {
  const Interval in[2] = {Interval{0.2, 0.4}, Interval{0.5, 0.5}};
  const Interval out = transfer_independent(kAnd2Truth, 2, in);
  EXPECT_DOUBLE_EQ(out.lo, 0.1);
  EXPECT_DOUBLE_EQ(out.hi, 0.2);
}

TEST(Transfer, CorrelatedAdmitsComplementPair) {
  // AND(a, b) where b could be ¬a: the true probability is 0, which the
  // independence product (0.25) would wrongly exclude.
  const Interval in[2] = {Interval{0.5, 0.5}, Interval{0.5, 0.5}};
  const Interval out = transfer_correlated(kAnd2Truth, 2, in);
  EXPECT_DOUBLE_EQ(out.lo, 0.0);
  EXPECT_DOUBLE_EQ(out.hi, 0.5);  // Fréchet upper: min of the marginals
}

TEST(Transfer, CorrelatedIsExactWithConstantInput) {
  const Interval in[2] = {Interval{1.0, 1.0}, Interval{0.3, 0.6}};
  const Interval out = transfer_correlated(kAnd2Truth, 2, in);
  EXPECT_DOUBLE_EQ(out.lo, 0.3);
  EXPECT_DOUBLE_EQ(out.hi, 0.6);
}

TEST(Transfer, ConstantFunctionsCollapse) {
  const Interval in[2] = {Interval::full(), Interval::full()};
  EXPECT_TRUE(transfer_correlated(0b0000, 2, in).is_constant());
  EXPECT_TRUE(transfer_correlated(0b1111, 2, in).is_constant());
  EXPECT_TRUE(transfer_independent(0b1111, 2, in).is_constant());
}

// ---------------------------------------------------------------- analyzer --

/// y = AND(a, INV(a)) — identically 0, invisible to independence reasoning.
TEST(Analyzer, ReconvergenceWidensSoundly) {
  netlist::Module m("reconv");
  const auto a = m.add_net("a");
  m.mark_input(a);
  netlist::NetlistBuilder b(m, lib());
  const auto n1 = b.gate("INV_X1", {a});
  const auto y = b.gate("AND2_X1", {a, n1});
  m.mark_output(y);

  AnalyzeOptions options;
  options.input_intervals["a"] = Interval::point(0.5);
  const StressReport r = analyze(m, lib(), options);
  EXPECT_TRUE(r.converged);
  // Sound: the true value 0 is inside the bound; precise-ish: ≤ 0.5.
  EXPECT_TRUE(r.net[static_cast<std::size_t>(y)].contains(0.0));
  EXPECT_LE(r.net[static_cast<std::size_t>(y)].hi, 0.5);
  EXPECT_NE(r.net_widened[static_cast<std::size_t>(y)], 0);
  EXPECT_TRUE(r.instances[1].widened);
  EXPECT_EQ(r.widened_net_count(), 1u);
}

TEST(Analyzer, SequentialConstantReachesFixpoint) {
  netlist::Module m("pipe");
  const auto a = m.add_net("a");
  m.mark_input(a);
  m.set_clock(m.add_net("clk"));
  netlist::NetlistBuilder b(m, lib());
  const auto q1 = b.flop("DFF_X1", a);
  const auto q2 = b.flop("DFF_X1", q1);
  m.mark_output(q2);

  AnalyzeOptions options;
  options.input_intervals["a"] = Interval::point(1.0);
  const StressReport r = analyze(m, lib(), options);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.iterations, 2);
  EXPECT_TRUE(r.net[static_cast<std::size_t>(q1)].is_constant());
  EXPECT_TRUE(r.net[static_cast<std::size_t>(q2)].is_constant());
  EXPECT_DOUBLE_EQ(r.net[static_cast<std::size_t>(q2)].lo, 1.0);
}

TEST(Analyzer, FlopFeedbackStaysTopAndConverges) {
  // Toggle flop: Q -> INV -> D. The concrete duty is 0.5, the abstract
  // fixed point is ⊤ — sound, and the iteration must still terminate.
  netlist::Module m("toggle");
  m.set_clock(m.add_net("clk"));
  const auto q = m.add_net("q");
  netlist::NetlistBuilder b(m, lib());
  const auto d = b.gate("INV_X1", {q});
  m.add_instance("r0", "DFF_X1", {d, m.clock()}, q);
  m.mark_output(q);

  const StressReport r = analyze(m, lib(), {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.net[static_cast<std::size_t>(q)], Interval::full());
}

TEST(Analyzer, FlopLambdaMatchesSimulatorClockConvention) {
  // With unconstrained inputs a flop still gets λn ∈ [0.25, 0.75]: the mean
  // of D ∈ [0,1] and the CK pin pinned at 0.5 (extract_duty_cycles parity).
  netlist::Module m("ff");
  const auto a = m.add_net("a");
  m.mark_input(a);
  m.set_clock(m.add_net("clk"));
  netlist::NetlistBuilder b(m, lib());
  const auto q = b.flop("DFF_X1", a);
  m.mark_output(q);

  const StressReport r = analyze(m, lib(), {});
  EXPECT_DOUBLE_EQ(r.instances[0].lambda_n.lo, 0.25);
  EXPECT_DOUBLE_EQ(r.instances[0].lambda_n.hi, 0.75);
  EXPECT_DOUBLE_EQ(r.instances[0].lambda_p.lo, 0.25);
  EXPECT_DOUBLE_EQ(r.instances[0].lambda_p.hi, 0.75);
}

// ------------------------------------------------------------- determinism --

synth::Ir small_datapath() {
  synth::Ir ir;
  const auto a = circuits::input_word(ir, "a", 6);
  const auto b = circuits::input_word(ir, "b", 6);
  const auto ra = circuits::register_word(ir, a);
  const auto rb = circuits::register_word(ir, b);
  const auto sum = circuits::add(ir, ra, rb);
  circuits::output_word(ir, "s", circuits::register_word(ir, sum));
  return ir;
}

netlist::Module mapped_design() {
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  return synth::synthesize(small_datapath(), lib(), "dp", opt).module;
}

TEST(Analyzer, ParallelAndSerialReportsAreBitIdentical) {
  const netlist::Module m = mapped_design();
  AnalyzeOptions par;
  AnalyzeOptions ser;
  ser.parallel = false;
  const StressReport a = analyze(m, lib(), par);
  const StressReport b = analyze(m, lib(), ser);
  ASSERT_EQ(a.net.size(), b.net.size());
  EXPECT_EQ(a.iterations, b.iterations);
  for (std::size_t i = 0; i < a.net.size(); ++i) {
    EXPECT_EQ(a.net[i], b.net[i]) << "net " << i;
    EXPECT_EQ(a.net_widened[i], b.net_widened[i]) << "net " << i;
  }
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].lambda_n, b.instances[i].lambda_n) << "inst " << i;
    EXPECT_EQ(a.instances[i].lambda_p, b.instances[i].lambda_p) << "inst " << i;
  }
}

// -------------------------------------------------------------- soundness --

/// The acceptance property: on every paper benchmark circuit, for several
/// RNG workloads, the simulated per-instance (λp, λn) lies inside the
/// statically proven interval.
TEST(Soundness, SimulatedLambdaInsideProvenBoundsOnEveryBenchmark) {
  constexpr int kWarmup = 64;    // flop reset transient is outside the
  constexpr int kMeasure = 512;  // steady-state semantics of the bounds
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  for (const auto& bc : circuits::benchmark_suite()) {
    const netlist::Module m = synth::synthesize(bc.build(), lib(), bc.name, opt).module;

    // Workload-independent run: default [0,1] inputs, exact containment.
    const StressReport bounds = analyze(m, lib(), {});
    EXPECT_TRUE(bounds.converged) << bc.name;

    // Narrowed run: per-input Bernoulli rates declared with a slack that
    // covers the finite-sample noise of the simulated frequencies.
    AnalyzeOptions narrowed;
    std::vector<double> rate;
    {
      int k = 0;
      for (netlist::NetId pi : m.inputs()) {
        if (pi == m.clock()) continue;
        const double p = 0.15 + 0.7 * ((k * 37) % 100) / 100.0;
        rate.push_back(p);
        narrowed.input_intervals[m.net_name(pi)] =
            Interval{p - 0.06, p + 0.06}.clamped();
        ++k;
      }
    }
    const StressReport narrow_bounds = analyze(m, lib(), narrowed);

    for (unsigned seed = 1; seed <= 3; ++seed) {
      util::Rng rng(seed);
      logicsim::CycleSimulator sim(m, lib());
      logicsim::ActivityCollector activity(m.net_count());
      for (int cycle = 0; cycle < kWarmup + kMeasure; ++cycle) {
        int k = 0;
        for (netlist::NetId pi : m.inputs()) {
          if (pi == m.clock()) continue;
          sim.set_input(pi, rng.chance(rate[static_cast<std::size_t>(k)]));
          ++k;
        }
        sim.evaluate();
        if (cycle >= kWarmup) activity.observe(sim);
        sim.clock_edge();
      }
      const auto duties = logicsim::extract_duty_cycles(m, lib(), activity);
      ASSERT_EQ(duties.size(), m.instances().size());
      for (std::size_t i = 0; i < duties.size(); ++i) {
        const auto& inst = m.instances()[i];
        // Exact containment against the workload-independent bounds.
        EXPECT_TRUE(bounds.instances[i].lambda_n.contains(duties[i].lambda_n))
            << bc.name << " seed " << seed << " inst " << inst.name << " λn "
            << duties[i].lambda_n << " ∉ " << bounds.instances[i].lambda_n.str();
        EXPECT_TRUE(bounds.instances[i].lambda_p.contains(duties[i].lambda_p))
            << bc.name << " seed " << seed << " inst " << inst.name << " λp "
            << duties[i].lambda_p << " ∉ " << bounds.instances[i].lambda_p.str();
        // Containment with sampling slack against the narrowed bounds
        // (independent Bernoulli inputs match the declared model).
        constexpr double kEps = 0.05;
        const Interval& nb = narrow_bounds.instances[i].lambda_n;
        EXPECT_GE(duties[i].lambda_n, nb.lo - kEps)
            << bc.name << " seed " << seed << " inst " << inst.name << " " << nb.str();
        EXPECT_LE(duties[i].lambda_n, nb.hi + kEps)
            << bc.name << " seed " << seed << " inst " << inst.name << " " << nb.str();
      }
    }
  }
}

// ------------------------------------------------------------ stack bounds --

TEST(Stacks, Nand2TransistorBounds) {
  const cells::CellSpec& spec = cells::find_cell("NAND2_X1");
  const std::vector<Interval> pins = {Interval::point(0.3), Interval::point(0.7)};
  const auto stresses = transistor_stress_bounds(spec, pins);
  ASSERT_EQ(stresses.size(), 4u);  // 2 nMOS series + 2 pMOS parallel
  for (const auto& t : stresses) {
    const double p_high = t.gate == "A" ? 0.3 : 0.7;
    if (t.type == device::MosType::kNmos) {
      EXPECT_DOUBLE_EQ(t.lambda.lo, p_high) << t.gate;
    } else {
      EXPECT_DOUBLE_EQ(t.lambda.lo, 1.0 - p_high) << t.gate;
    }
    EXPECT_TRUE(t.lambda.is_point());
  }
  const double spread =
      max_stack_spread(stresses, Interval::point(0.5), Interval::point(0.5));
  EXPECT_NEAR(spread, 0.2, 1e-12);  // per-device stress vs footnote-2 average
}

TEST(Stacks, MultiStageInternalNodesArePropagated) {
  // AND2 = NAND2 + INV: the inverter stage's transistors see the internal
  // node, whose interval must follow from the first stage.
  const cells::CellSpec& spec = cells::find_cell("AND2_X1");
  const std::vector<Interval> pins = {Interval::point(1.0), Interval::point(1.0)};
  const auto stresses = transistor_stress_bounds(spec, pins);
  ASSERT_GE(stresses.size(), 6u);
  for (const auto& t : stresses) {
    if (t.gate == "A" || t.gate == "B") continue;
    // Internal NAND output with both inputs at 1 is constant 0.
    const double p_high = 0.0;
    if (t.type == device::MosType::kNmos) {
      EXPECT_DOUBLE_EQ(t.lambda.hi, p_high) << t.gate;
    } else {
      EXPECT_DOUBLE_EQ(t.lambda.lo, 1.0 - p_high) << t.gate;
    }
  }
}

// ------------------------------------------------------- bounded-static flow --

TEST(BoundedStatic, GuardbandAtMostOneCornerStatic) {
  const netlist::Module m = mapped_design();
  const auto bounded = flow::bounded_static_guardband(m, factory(), 10.0);
  const auto worst = flow::static_guardband(m, factory(), aging::AgingScenario::worst_case(10));
  EXPECT_GT(bounded.report.guardband_ps(), 0.0);
  EXPECT_LE(bounded.report.guardband_ps(), worst.guardband_ps() + 1e-6);
  EXPECT_FALSE(bounded.corners.empty());
  EXPECT_TRUE(bounded.stress.converged);
  EXPECT_GT(bounded.candidate_corners, 0u);
  // Every chosen corner is λ-indexed and couples λp = 1 − λn.
  for (const auto& [lp, ln] : bounded.corners) {
    EXPECT_NEAR(lp + ln, 1.0, 1e-9);
  }
}

TEST(BoundedStatic, NarrowedInputsCannotWorsenTheGuardband) {
  const netlist::Module m = mapped_design();
  const auto wide = flow::bounded_static_guardband(m, factory(), 10.0);
  AnalyzeOptions narrowed;
  for (netlist::NetId pi : m.inputs()) {
    if (pi != m.clock()) narrowed.input_intervals[m.net_name(pi)] = Interval{0.45, 0.55};
  }
  const auto tight = flow::bounded_static_guardband(m, factory(), 10.0, narrowed);
  EXPECT_LE(tight.report.guardband_ps(), wide.report.guardband_ps() + 1e-6);
  EXPECT_LE(tight.candidate_corners, wide.candidate_corners);
}

// ------------------------------------------------------------------- CLI ----

std::string run_cli(const std::string& args, int& exit_code) {
  const std::string out_path = std::string(::testing::TempDir()) + "rwstress_out.txt";
  const std::string cmd = std::string(RWSTRESS_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(out_path.c_str());
  return ss.str();
}

TEST(RwstressCli, OutputIsThreadCountInvariant) {
  const std::string fixture =
      "--lib " RW_REPO_DIR "/examples/fixtures/mini.lib " RW_REPO_DIR
      "/examples/fixtures/clean.v";
  int code1 = -1;
  int codeN = -1;
  const std::string one = run_cli("--threads 1 " + fixture, code1);
  const std::string many = run_cli("--threads 8 " + fixture, codeN);
  EXPECT_EQ(code1, 0) << one;
  EXPECT_EQ(codeN, 0) << many;
  EXPECT_EQ(one, many);
  EXPECT_NE(one.find("lambda_n"), std::string::npos);
}

TEST(RwstressCli, DeclaredConstantsSurfaceAsSp002Warnings) {
  int code = -1;
  const std::string out = run_cli("--input a=0:0 --format json --lib " RW_REPO_DIR
                                  "/examples/fixtures/mini.lib " RW_REPO_DIR
                                  "/examples/fixtures/clean.v",
                                  code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("\"SP002\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"worst\":\"warning\""), std::string::npos) << out;
}

TEST(RwstressCli, UsageErrorsExitSixtyFour) {
  int code = -1;
  run_cli("--input bogus --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
  run_cli("--default 0.9:0.1 --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
}

}  // namespace
}  // namespace rw::stress
