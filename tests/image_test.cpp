#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "circuits/benchmarks.hpp"
#include "image/chain.hpp"
#include "image/dct2d.hpp"
#include "image/image.hpp"
#include "image/psnr.hpp"

namespace rw::image {
namespace {

TEST(Image, SyntheticIsDeterministicAndInRange) {
  const Image a = make_synthetic_image(32, 32, 7);
  const Image b = make_synthetic_image(32, 32, 7);
  const Image c = make_synthetic_image(32, 32, 8);
  EXPECT_EQ(a.pixels(), b.pixels());
  EXPECT_NE(a.pixels(), c.pixels());
  EXPECT_THROW(make_synthetic_image(30, 32), std::invalid_argument);
}

TEST(Image, PgmRoundTrip) {
  const Image img = make_synthetic_image(16, 24, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rw_test_img.pgm").string();
  write_pgm(img, path);
  const Image back = read_pgm(path);
  EXPECT_EQ(back.width(), img.width());
  EXPECT_EQ(back.height(), img.height());
  EXPECT_EQ(back.pixels(), img.pixels());
  std::filesystem::remove(path);
}

TEST(Psnr, IdenticalIsInfiniteAndNoiseIsFinite) {
  const Image img = make_synthetic_image(16, 16);
  EXPECT_TRUE(std::isinf(psnr_db(img, img)));
  Image noisy = img;
  noisy.set(3, 3, static_cast<std::uint8_t>(img.at(3, 3) ^ 0x40));
  const double p = psnr_db(img, noisy);
  EXPECT_GT(p, 20.0);
  EXPECT_LT(p, 60.0);
}

TEST(Quant, StrongerQuantizationLowersPsnr) {
  const Image img = make_synthetic_image(32, 32);
  ReferenceDct dct;
  ReferenceIdct idct;
  const double mild = run_dct_idct_chain(img, dct, idct, QuantTable::jpeg_luma(0.5)).psnr_db;
  const double strong = run_dct_idct_chain(img, dct, idct, QuantTable::jpeg_luma(4.0)).psnr_db;
  EXPECT_GT(mild, strong);
  EXPECT_GT(mild, 30.0);  // near-lossless at half-strength quantization
}

TEST(Chain, ReferenceChainHasAcceptableQuality) {
  const Image img = make_synthetic_image(48, 48);
  ReferenceDct dct;
  ReferenceIdct idct;
  const ChainResult r = run_dct_idct_chain(img, dct, idct, QuantTable::jpeg_luma(1.0));
  EXPECT_GT(r.psnr_db, kAcceptablePsnrDb);  // the paper's 30 dB threshold
  EXPECT_EQ(r.output.width(), img.width());
}

TEST(Chain, IrPortsMatchReferenceExactly) {
  // The gate-level DCT/IDCT circuits (simulated functionally) must produce
  // the exact same image as the software reference.
  const Image img = make_synthetic_image(16, 16);
  const auto quant = QuantTable::jpeg_luma(1.0);

  ReferenceDct rdct;
  ReferenceIdct ridct;
  const ChainResult ref = run_dct_idct_chain(img, rdct, ridct, quant);

  const synth::Ir dct_ir = circuits::make_dct8();
  const synth::Ir idct_ir = circuits::make_idct8();
  IrVectorPort dct_port(dct_ir, "x", 12, "y", 12);
  IrVectorPort idct_port(idct_ir, "y", 12, "x", 12);
  const ChainResult hw = run_dct_idct_chain(img, dct_port, idct_port, quant);

  EXPECT_EQ(hw.output.pixels(), ref.output.pixels());
  EXPECT_DOUBLE_EQ(hw.psnr_db, ref.psnr_db);
}

TEST(Quant, TableScaling) {
  const QuantTable q1 = QuantTable::jpeg_luma(1.0);
  const QuantTable q2 = QuantTable::jpeg_luma(2.0);
  EXPECT_EQ(q1.q[0], 16);
  EXPECT_EQ(q2.q[0], 32);
  for (int i = 0; i < 64; ++i) EXPECT_GE(q1.q[static_cast<std::size_t>(i)], 1);
}

}  // namespace
}  // namespace rw::image
