#include <gtest/gtest.h>

#include "device/mosfet.hpp"
#include "device/ptm45.hpp"

namespace rw::device {
namespace {

const Technology& tech() { return ptm45(); }

TEST(Mosfet, OffBelowThreshold) {
  const Mosfet n(tech().nmos, 0.4);
  // Deep subthreshold current must be negligible vs on-current.
  const double off = n.drain_current_ma(0.0, 1.2, 0.0);
  const double on = n.drain_current_ma(1.2, 1.2, 0.0);
  EXPECT_GT(on, 1e3 * off);
  EXPECT_GT(on, 0.1);  // hundreds of µA per 0.4 µm at full drive
}

TEST(Mosfet, CurrentIncreasesWithGateDrive) {
  const Mosfet n(tech().nmos, 0.4);
  double prev = 0.0;
  for (double vg = 0.5; vg <= 1.2; vg += 0.1) {
    const double id = n.drain_current_ma(vg, 1.2, 0.0);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Mosfet, CurrentMonotoneInVds) {
  const Mosfet n(tech().nmos, 0.4);
  double prev = 0.0;
  for (double vd = 0.05; vd <= 1.2; vd += 0.05) {
    const double id = n.drain_current_ma(1.2, vd, 0.0);
    EXPECT_GE(id, prev);
    prev = id;
  }
}

TEST(Mosfet, SymmetricReverseConduction) {
  const Mosfet n(tech().nmos, 0.4);
  // Swapping drain/source flips the sign of the current.
  const double fwd = n.drain_current_ma(1.2, 0.7, 0.3);
  const double rev = n.drain_current_ma(1.2, 0.3, 0.7);
  EXPECT_NEAR(fwd, -rev, 1e-12);
}

TEST(Mosfet, ContinuousAcrossVdsZero) {
  const Mosfet n(tech().nmos, 0.4);
  const double lo = n.drain_current_ma(1.0, -1e-7, 0.0);
  const double hi = n.drain_current_ma(1.0, 1e-7, 0.0);
  EXPECT_NEAR(lo, hi, 1e-6);
}

TEST(Mosfet, PmosConductsWhenGateLow) {
  const Mosfet p(tech().pmos, 0.8);
  // Source at VDD, drain low, gate low: current flows out of the drain.
  const double id = p.drain_current_ma(0.0, 0.0, 1.2);
  EXPECT_LT(id, -0.1);
  // Gate high: off.
  EXPECT_NEAR(p.drain_current_ma(1.2, 0.0, 1.2), 0.0, 1e-4);
}

TEST(Mosfet, ThresholdShiftReducesCurrent) {
  const Mosfet fresh(tech().nmos, 0.4);
  const Mosfet aged(tech().nmos, 0.4, Degradation{0.05, 1.0});
  EXPECT_LT(aged.drain_current_ma(1.2, 1.2, 0.0), fresh.drain_current_ma(1.2, 1.2, 0.0));
}

TEST(Mosfet, MobilityLossReducesCurrentProportionally) {
  const Mosfet fresh(tech().nmos, 0.4);
  const Mosfet aged(tech().nmos, 0.4, Degradation{0.0, 0.9});
  EXPECT_NEAR(aged.drain_current_ma(1.2, 1.2, 0.0), 0.9 * fresh.drain_current_ma(1.2, 1.2, 0.0),
              1e-9);
}

TEST(Mosfet, RejectsInvalidDegradation) {
  EXPECT_THROW(Mosfet(tech().nmos, 0.4, Degradation{-0.01, 1.0}), std::invalid_argument);
  EXPECT_THROW(Mosfet(tech().nmos, 0.4, Degradation{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Mosfet(tech().nmos, 0.4, Degradation{0.0, 1.5}), std::invalid_argument);
  EXPECT_THROW(Mosfet(tech().nmos, -1.0), std::invalid_argument);
}

TEST(Mosfet, CapsScaleWithWidth) {
  const Mosfet a(tech().nmos, 0.4);
  const Mosfet b(tech().nmos, 0.8);
  EXPECT_NEAR(b.gate_cap_ff(), 2.0 * a.gate_cap_ff(), 1e-12);
  EXPECT_NEAR(b.junction_cap_ff(), 2.0 * a.junction_cap_ff(), 1e-12);
}

TEST(Technology, CalibratedDriveBalance) {
  // Standard beta ratio: X1 pMOS (0.8 µm) roughly matches X1 nMOS (0.4 µm).
  const Mosfet n(tech().nmos, tech().nmos_unit_width_um);
  const Mosfet p(tech().pmos, tech().pmos_unit_width_um);
  const double idn = n.drain_current_ma(1.2, 1.2, 0.0);
  const double idp = -p.drain_current_ma(0.0, 0.0, 1.2);
  EXPECT_GT(idp / idn, 0.6);
  EXPECT_LT(idp / idn, 1.6);
}

}  // namespace
}  // namespace rw::device
