#include <gtest/gtest.h>

#include "charlib/factory.hpp"
#include "circuits/benchmarks.hpp"
#include "image/chain.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/sdf.hpp"
#include "netlist/verilog.hpp"
#include "sta/analysis.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

// End-to-end integration against the full library at the paper's 7x7 OPC
// grid. These tests share the on-disk characterization cache with the bench
// harnesses, so the first run pays a one-time SPICE characterization cost.

namespace rw {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f{};  // full catalog, default cache
  return f;
}
const liberty::Library& fresh() { return factory().library(aging::AgingScenario::fresh()); }
const liberty::Library& aged() { return factory().library(aging::AgingScenario::worst_case(10)); }

TEST(Integration, FullLibraryShape) {
  const auto& lib = fresh();
  EXPECT_GE(lib.size(), 55u);
  // Every combinational cell has an arc per input with at least one table;
  // every flop has a clocked CK arc and a setup value.
  for (const auto& cell : lib.cells()) {
    if (cell.is_flop) {
      ASSERT_EQ(cell.arcs.size(), 1u) << cell.name;
      EXPECT_TRUE(cell.arcs[0].clocked);
      EXPECT_GT(cell.setup_ps, 0.0) << cell.name;
      continue;
    }
    EXPECT_EQ(static_cast<int>(cell.arcs.size()), cell.n_inputs()) << cell.name;
    for (const auto& arc : cell.arcs) {
      EXPECT_FALSE(arc.rise.empty() && arc.fall.empty()) << cell.name << "/" << arc.related_pin;
    }
  }
}

TEST(Integration, AgingSlowsEveryCellAtTypicalOpc) {
  // Fig. 2's single-OPC observation: at one mid OPC, worst-case aging
  // degrades (essentially) every cell's worst arc.
  int degraded = 0;
  int total = 0;
  for (const auto& cell : fresh().cells()) {
    if (cell.is_flop) continue;
    const auto& aged_cell = aged().at(cell.name);
    for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
      for (const bool rise : {true, false}) {
        const auto& tf = rise ? cell.arcs[a].rise : cell.arcs[a].fall;
        const auto& ta = rise ? aged_cell.arcs[a].rise : aged_cell.arcs[a].fall;
        if (tf.empty()) continue;
        ++total;
        if (ta.delay_ps.lookup(60.0, 4.0) > tf.delay_ps.lookup(60.0, 4.0)) ++degraded;
      }
    }
  }
  EXPECT_GT(total, 100);
  EXPECT_GT(degraded, total * 9 / 10);
}

TEST(Integration, SynthesizeSimulateDspEquivalence) {
  const synth::Ir ir = circuits::make_dsp();
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  const auto res = synth::synthesize(ir, fresh(), "dsp", opt);
  EXPECT_GT(res.gate_count, 1000u);

  synth::IrSimulator gold(ir);
  logicsim::CycleSimulator netsim(res.module, fresh());
  util::Rng rng(42);
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 16; ++i) {
      const bool av = rng.chance(0.5);
      const bool bv = rng.chance(0.5);
      gold.set_input("a" + std::to_string(i), av);
      gold.set_input("b" + std::to_string(i), bv);
      netsim.set_input(res.module.find_net("a" + std::to_string(i)), av);
      netsim.set_input(res.module.find_net("b" + std::to_string(i)), bv);
    }
    const bool clear = rng.chance(0.05);
    gold.set_input("clear", clear);
    netsim.set_input(res.module.find_net("clear"), clear);
    gold.evaluate();
    netsim.evaluate();
    for (int i = 0; i < 32; ++i) {
      const std::string name = "acc" + std::to_string(i);
      ASSERT_EQ(netsim.value(res.module.find_net(name)), gold.output(name))
          << name << " cycle " << cycle;
    }
    gold.clock_edge();
    netsim.clock_edge();
  }
}

TEST(Integration, VerilogRoundTripOfSynthesizedDesign) {
  const synth::Ir ir = circuits::make_fft();
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  const auto res = synth::synthesize(ir, fresh(), "fft", opt);
  const std::string text = netlist::write_verilog(res.module, fresh());
  const netlist::Module parsed = netlist::parse_verilog(text, fresh());
  parsed.validate();
  // Timing of the reparsed netlist matches the original.
  const double cp1 = sta::Sta(res.module, fresh()).critical_delay_ps();
  const double cp2 = sta::Sta(parsed, fresh()).critical_delay_ps();
  EXPECT_NEAR(cp1, cp2, 1e-6);
}

TEST(Integration, TimedChainAtFreshPeriodIsErrorFree) {
  // The paper's year-0 sanity: run the synthesized DCT at its own fresh
  // critical period; the gate-level timed image chain must match golden.
  const synth::Ir dct_ir = circuits::make_dct8();
  const synth::Ir idct_ir = circuits::make_idct8();
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  const auto dct = synth::synthesize(dct_ir, fresh(), "dct", opt);
  const auto idct = synth::synthesize(idct_ir, fresh(), "idct", opt);
  const sta::Sta sd(dct.module, fresh());
  const sta::Sta si(idct.module, fresh());
  const double period = std::max(sd.critical_delay_ps(), si.critical_delay_ps());
  const auto ad = netlist::compute_delay_annotation(sd);
  const auto ai = netlist::compute_delay_annotation(si);

  const image::Image img = image::make_synthetic_image(16, 16);
  const auto quant = image::QuantTable::jpeg_luma(1.0);
  image::ReferenceDct rdct;
  image::ReferenceIdct ridct;
  const auto golden = image::run_dct_idct_chain(img, rdct, ridct, quant);
  image::TimedVectorPort pd(dct.module, fresh(), ad, period, "x", 12, "y", 12);
  image::TimedVectorPort pi(idct.module, fresh(), ai, period, "y", 12, "x", 12);
  const auto timed = image::run_dct_idct_chain(img, pd, pi, quant);
  EXPECT_EQ(timed.output.pixels(), golden.output.pixels());
}

}  // namespace
}  // namespace rw
