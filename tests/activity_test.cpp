#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "charlib/factory.hpp"
#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"
#include "logicsim/activity.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/builder.hpp"
#include "stress/activity_bounds.hpp"
#include "stress/analyzer.hpp"
#include "stress/interval.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

// Sanitizer instrumentation skews the analysis/simulation cost ratio, so the
// wall-time bar only runs on plain builds; the soundness checks always run.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define RW_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define RW_UNDER_SANITIZER 1
#endif
#endif

namespace rw::stress {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "INV_X2", "NAND2_X1", "NAND2_X2", "NOR2_X1",
                     "AND2_X1", "XOR2_X1", "BUF_X2",  "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}

const liberty::Library& lib() { return factory().library(aging::AgingScenario::fresh()); }

constexpr std::uint64_t kAnd2Truth = 0b1000;
constexpr std::uint64_t kXor2Truth = 0b0110;

// ---------------------------------------------------------------- transfer --

TEST(ActivityTransfer, BooleanDifferenceProjectsOutTheInput) {
  // ∂(a∧b)/∂a = b; ∂(a⊕b)/∂a ≡ 1.
  EXPECT_EQ(boolean_difference(kAnd2Truth, 2, 0), 0b10u);
  EXPECT_EQ(boolean_difference(kAnd2Truth, 2, 1), 0b10u);
  EXPECT_EQ(boolean_difference(kXor2Truth, 2, 0), 0b11u);
  EXPECT_EQ(boolean_difference(kXor2Truth, 2, 1), 0b11u);
}

TEST(ActivityTransfer, StationaryCapFollowsTheProbabilityInterval) {
  EXPECT_DOUBLE_EQ(stationary_density_cap(Interval::point(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(stationary_density_cap(Interval::point(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(stationary_density_cap(Interval::point(0.5)), 1.0);
  EXPECT_DOUBLE_EQ(stationary_density_cap(Interval{0.0, 0.2}), 0.4);
  EXPECT_DOUBLE_EQ(stationary_density_cap(Interval{0.9, 1.0}), 0.2);
  EXPECT_DOUBLE_EQ(stationary_density_cap(Interval::full()), 1.0);
}

TEST(ActivityTransfer, SingleInputGatesPassDensityThroughExactly) {
  // An inverter neither creates nor destroys toggles — including the clock's
  // 2 transitions/cycle, which is what keeps clock trees pinned.
  const Interval p[1] = {Interval{0.0, 1.0}};
  const Interval d[1] = {Interval{0.2, 0.7}};
  EXPECT_EQ(density_independent(0b01, 1, p, d), (Interval{0.2, 0.7}));
  const Interval dclk[1] = {Interval::point(2.0)};
  EXPECT_EQ(density_independent(0b01, 1, p, dclk), Interval::point(2.0));
  EXPECT_EQ(density_correlated(0b10, 1, p, dclk), Interval::point(2.0));
}

TEST(ActivityTransfer, ConstantInputsCofactorOut) {
  // AND(a, b) with b proven 1 is the identity on a: exact pass-through.
  const Interval p[2] = {Interval{0.2, 0.8}, Interval::point(1.0)};
  const Interval d[2] = {Interval{0.1, 0.4}, Interval::point(0.0)};
  EXPECT_EQ(density_independent(kAnd2Truth, 2, p, d), (Interval{0.1, 0.4}));
  // With b proven 0 the output is constant 0: no toggles at all.
  const Interval p0[2] = {Interval{0.2, 0.8}, Interval::point(0.0)};
  EXPECT_EQ(density_independent(kAnd2Truth, 2, p0, d), Interval::point(0.0));
}

TEST(ActivityTransfer, PairExactTightensTheNajmBoundOnXor) {
  // Independent inputs at p = 0.5, d = 0.5: the Najm bound alone says 1.0
  // (both ∂-probabilities are 1), but the toggles coincide half the time —
  // the pair-exact enumeration proves exactly 0.5.
  const Interval p[2] = {Interval::point(0.5), Interval::point(0.5)};
  const Interval d[2] = {Interval::point(0.5), Interval::point(0.5)};
  const Interval out = density_independent(kXor2Truth, 2, p, d);
  EXPECT_DOUBLE_EQ(out.lo, 0.5);
  EXPECT_DOUBLE_EQ(out.hi, 0.5);
}

TEST(ActivityTransfer, CorrelatedWideningKeepsTheUnionBound) {
  // Reconvergent fanout: each input contributes at most its own toggles,
  // whatever the correlation; the lower bound collapses to 0.
  const Interval p[2] = {Interval{0.0, 1.0}, Interval{0.0, 1.0}};
  const Interval d[2] = {Interval{0.1, 0.2}, Interval{0.2, 0.3}};
  const Interval out = density_correlated(kXor2Truth, 2, p, d);
  EXPECT_DOUBLE_EQ(out.lo, 0.0);
  EXPECT_DOUBLE_EQ(out.hi, 0.5);
}

// ---------------------------------------------------------------- analyzer --

TEST(ActivityAnalyzer, ClockBufferStaysAtTwoTransitionsPerCycle) {
  netlist::Module m("clktree");
  m.set_clock(m.add_net("clk"));
  netlist::NetlistBuilder b(m, lib());
  const auto buffered = b.gate("BUF_X2", {m.clock()});
  const auto inverted = b.gate("INV_X1", {buffered});
  m.mark_output(inverted);

  const ActivityReport r = analyze_activity(m, lib());
  EXPECT_EQ(r.density[static_cast<std::size_t>(buffered)], Interval::point(2.0));
  EXPECT_EQ(r.density[static_cast<std::size_t>(inverted)], Interval::point(2.0));
  EXPECT_NE(r.clock_fed[static_cast<std::size_t>(buffered)], 0);
  EXPECT_NE(r.clock_fed[static_cast<std::size_t>(inverted)], 0);
  // Pin/output summaries carry the clock density too.
  EXPECT_EQ(r.instances[0].output_toggles, Interval::point(2.0));
}

TEST(ActivityAnalyzer, FlopDensityIsTheXorOfDataAndState) {
  // Constant data: after the fixed point Q is constant, so Q never toggles.
  netlist::Module m("pipe");
  const auto a = m.add_net("a");
  m.mark_input(a);
  m.set_clock(m.add_net("clk"));
  netlist::NetlistBuilder b(m, lib());
  const auto q1 = b.flop("DFF_X1", a);
  const auto q2 = b.flop("DFF_X1", q1);
  m.mark_output(q2);

  ActivityOptions constant;
  constant.probability.input_intervals["a"] = Interval::point(1.0);
  const ActivityReport r = analyze_activity(m, lib(), constant);
  EXPECT_EQ(r.density[static_cast<std::size_t>(q1)], Interval::point(0.0));
  EXPECT_EQ(r.density[static_cast<std::size_t>(q2)], Interval::point(0.0));
  // Flop outputs sample once per edge: never above 1 toggle/cycle, and not
  // clock-fed (cycle sampling does observe them).
  const ActivityReport free_run = analyze_activity(m, lib());
  EXPECT_LE(free_run.density[static_cast<std::size_t>(q1)].hi, 1.0);
  EXPECT_EQ(free_run.clock_fed[static_cast<std::size_t>(q1)], 0);
}

TEST(ActivityAnalyzer, DeclaredQuietInputsSilenceTheirCone) {
  netlist::Module m("quiet");
  const auto a = m.add_net("a");
  const auto c = m.add_net("c");
  m.mark_input(a);
  m.mark_input(c);
  netlist::NetlistBuilder b(m, lib());
  const auto n1 = b.gate("NAND2_X1", {a, c});
  const auto y = b.gate("INV_X1", {n1});
  m.mark_output(y);

  ActivityOptions options;
  options.input_densities["a"] = Interval::point(0.0);
  options.input_densities["c"] = Interval::point(0.0);
  const ActivityReport r = analyze_activity(m, lib(), options);
  EXPECT_EQ(r.density[static_cast<std::size_t>(n1)], Interval::point(0.0));
  EXPECT_EQ(r.density[static_cast<std::size_t>(y)], Interval::point(0.0));
  EXPECT_EQ(r.quiet_driven_nets, 2u);
  EXPECT_EQ(r.instances[0].switch_cap_ff.hi, 0.0);
  EXPECT_EQ(r.instances[0].hci.hi, 0.0);
}

synth::Ir small_datapath() {
  synth::Ir ir;
  const auto a = circuits::input_word(ir, "a", 6);
  const auto b = circuits::input_word(ir, "b", 6);
  const auto ra = circuits::register_word(ir, a);
  const auto rb = circuits::register_word(ir, b);
  const auto sum = circuits::add(ir, ra, rb);
  circuits::output_word(ir, "s", circuits::register_word(ir, sum));
  return ir;
}

netlist::Module mapped_design() {
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  return synth::synthesize(small_datapath(), lib(), "dp", opt).module;
}

TEST(ActivityAnalyzer, ParallelAndSerialReportsAreBitIdentical) {
  const netlist::Module m = mapped_design();
  ActivityOptions par;
  ActivityOptions ser;
  ser.probability.parallel = false;
  const ActivityReport a = analyze_activity(m, lib(), par);
  const ActivityReport b = analyze_activity(m, lib(), ser);
  ASSERT_EQ(a.density.size(), b.density.size());
  for (std::size_t i = 0; i < a.density.size(); ++i) {
    EXPECT_EQ(a.density[i], b.density[i]) << "net " << i;
    EXPECT_EQ(a.density_widened[i], b.density_widened[i]) << "net " << i;
    EXPECT_EQ(a.clock_fed[i], b.clock_fed[i]) << "net " << i;
  }
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].output_toggles, b.instances[i].output_toggles) << i;
    EXPECT_EQ(a.instances[i].hci.lo, b.instances[i].hci.lo) << i;
    EXPECT_EQ(a.instances[i].hci.hi, b.instances[i].hci.hi) << i;
    EXPECT_EQ(a.instances[i].switch_cap_ff.hi, b.instances[i].switch_cap_ff.hi) << i;
  }
}

// -------------------------------------------------------------- soundness --

/// The acceptance property: on every paper benchmark circuit, for several
/// RNG workloads and two input models, the simulated per-net toggle rate
/// lies inside the proven density interval — and the whole analysis costs
/// less wall time than the simulations it replaces.
TEST(ActivitySoundness, SimulatedTogglesInsideProvenBoundsOnEveryBenchmark) {
  constexpr int kWarmup = 64;    // flop reset transient is outside the
  constexpr int kMeasure = 512;  // steady-state semantics of the bounds
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  using clock = std::chrono::steady_clock;
  std::chrono::duration<double> analysis_total{0.0};
  std::chrono::duration<double> simulation_total{0.0};

  for (const auto& bc : circuits::benchmark_suite()) {
    const netlist::Module m = synth::synthesize(bc.build(), lib(), bc.name, opt).module;

    // Workload-independent run: default model, exact containment.
    const auto t0 = clock::now();
    const ActivityReport bounds = analyze_activity(m, lib());
    analysis_total += clock::now() - t0;
    EXPECT_TRUE(bounds.probability.converged) << bc.name;

    // Narrowed run: per-input Bernoulli(p) declared as p ± 0.06 with the
    // matching iid toggle density 2p(1−p) ± 0.1; containment then holds up
    // to finite-sample noise.
    ActivityOptions narrowed;
    std::vector<double> rate;
    {
      int k = 0;
      for (netlist::NetId pi : m.inputs()) {
        if (pi == m.clock()) continue;
        const double p = 0.15 + 0.7 * ((k * 37) % 100) / 100.0;
        rate.push_back(p);
        narrowed.probability.input_intervals[m.net_name(pi)] =
            Interval{p - 0.06, p + 0.06}.clamped();
        const double dens = 2.0 * p * (1.0 - p);
        narrowed.input_densities[m.net_name(pi)] =
            Interval{dens - 0.1, dens + 0.1}.clamped();
        ++k;
      }
    }
    const ActivityReport narrow_bounds = analyze_activity(m, lib(), narrowed);

    for (unsigned seed = 1; seed <= 3; ++seed) {
      util::Rng rng(seed);
      logicsim::CycleSimulator sim(m, lib());
      logicsim::ActivityCollector activity(m.net_count());
      const auto s0 = clock::now();
      for (int cycle = 0; cycle < kWarmup + kMeasure; ++cycle) {
        int k = 0;
        for (netlist::NetId pi : m.inputs()) {
          if (pi == m.clock()) continue;
          sim.set_input(pi, rng.chance(rate[static_cast<std::size_t>(k)]));
          ++k;
        }
        sim.evaluate();
        if (cycle >= kWarmup) activity.observe(sim);
        sim.clock_edge();
      }
      simulation_total += clock::now() - s0;

      for (std::size_t net = 0; net < bounds.density.size(); ++net) {
        if (bounds.clock_fed[net] != 0) continue;  // intra-cycle toggles
        const auto id = static_cast<netlist::NetId>(net);
        const auto measured = activity.toggle_rate(id);
        ASSERT_TRUE(measured.has_value());
        // Exact containment against the workload-independent bounds.
        const Interval& d = bounds.density[net];
        EXPECT_GE(*measured, d.lo - 1e-9) << bc.name << " seed " << seed << " net "
                                          << m.net_name(id) << " " << d.str();
        EXPECT_LE(*measured, d.hi + 1e-9) << bc.name << " seed " << seed << " net "
                                          << m.net_name(id) << " " << d.str();
        // Containment with sampling slack against the narrowed bounds
        // (independent Bernoulli inputs match the declared model).
        constexpr double kEps = 0.05;
        const Interval& nd = narrow_bounds.density[net];
        EXPECT_GE(*measured, nd.lo - kEps) << bc.name << " seed " << seed << " net "
                                           << m.net_name(id) << " " << nd.str();
        EXPECT_LE(*measured, nd.hi + kEps) << bc.name << " seed " << seed << " net "
                                           << m.net_name(id) << " " << nd.str();
      }
    }
  }
  // The headline claim: proving bounds for all 7 circuits costs less than
  // simulating the three 576-cycle workloads they stand in for.
#if !defined(RW_UNDER_SANITIZER)
  EXPECT_LT(analysis_total.count(), simulation_total.count());
#else
  (void)analysis_total;
  (void)simulation_total;
#endif
}

// ------------------------------------------------------------- zero width --

/// Zero-width input models must collapse to the simulator's exact rates on
/// correlation-free nets: constant inputs freeze the whole circuit, and the
/// analysis proves the point interval [0, 0] the simulator measures.
TEST(ActivityZeroWidth, ConstantInputsCollapseBitwiseOnEveryBenchmark) {
  constexpr int kWarmup = 64;
  constexpr int kMeasure = 128;
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  for (const auto& bc : circuits::benchmark_suite()) {
    const netlist::Module m = synth::synthesize(bc.build(), lib(), bc.name, opt).module;
    ActivityOptions options;
    std::vector<bool> value;
    {
      int k = 0;
      for (netlist::NetId pi : m.inputs()) {
        if (pi == m.clock()) continue;
        const bool v = (k % 3) == 1;
        value.push_back(v);
        options.probability.input_intervals[m.net_name(pi)] =
            Interval::point(v ? 1.0 : 0.0);
        ++k;
      }
    }
    const ActivityReport bounds = analyze_activity(m, lib(), options);

    logicsim::CycleSimulator sim(m, lib());
    logicsim::ActivityCollector activity(m.net_count());
    for (int cycle = 0; cycle < kWarmup + kMeasure; ++cycle) {
      int k = 0;
      for (netlist::NetId pi : m.inputs()) {
        if (pi == m.clock()) continue;
        sim.set_input(pi, value[static_cast<std::size_t>(k)]);
        ++k;
      }
      sim.evaluate();
      if (cycle >= kWarmup) activity.observe(sim);
      sim.clock_edge();
    }
    std::size_t points = 0;
    for (std::size_t net = 0; net < bounds.density.size(); ++net) {
      if (bounds.clock_fed[net] != 0) continue;
      if (!bounds.density[net].is_point()) continue;  // feedback flops stay ⊤
      ++points;
      const auto measured = activity.toggle_rate(static_cast<netlist::NetId>(net));
      ASSERT_TRUE(measured.has_value());
      EXPECT_EQ(*measured, bounds.density[net].lo)
          << bc.name << " net " << m.net_name(static_cast<netlist::NetId>(net));
    }
    // Non-vacuous: constant inputs must freeze a substantial share of the
    // circuit (feedback flops — e.g. register files — soundly stay ⊤, so
    // "all nets" is not achievable on the processor cores).
    EXPECT_GT(points, bounds.density.size() / 4) << bc.name;
  }
}

TEST(ActivityZeroWidth, DeterministicTogglingInputCollapsesBitwise) {
  // a alternates every cycle: p = 0.5, d = 1 exactly. The XOR with a frozen
  // second input reduces to the identity, so the proven interval is the
  // point [1, 1] and the measured rate is exactly 1.0.
  netlist::Module m("osc");
  const auto a = m.add_net("a");
  const auto b = m.add_net("b");
  m.mark_input(a);
  m.mark_input(b);
  netlist::NetlistBuilder builder(m, lib());
  const auto x = builder.gate("XOR2_X1", {a, b});
  const auto y = builder.gate("INV_X1", {x});
  m.mark_output(y);

  ActivityOptions options;
  options.probability.input_intervals["a"] = Interval::point(0.5);
  options.probability.input_intervals["b"] = Interval::point(0.0);
  options.input_densities["a"] = Interval::point(1.0);
  const ActivityReport bounds = analyze_activity(m, lib(), options);
  EXPECT_EQ(bounds.density[static_cast<std::size_t>(x)], Interval::point(1.0));
  EXPECT_EQ(bounds.density[static_cast<std::size_t>(y)], Interval::point(1.0));

  logicsim::CycleSimulator sim(m, lib());
  logicsim::ActivityCollector activity(m.net_count());
  for (int cycle = 0; cycle < 64; ++cycle) {
    sim.set_input(a, (cycle & 1) != 0);
    sim.set_input(b, false);
    sim.evaluate();
    activity.observe(sim);
    sim.clock_edge();
  }
  EXPECT_EQ(*activity.toggle_rate(x), 1.0);
  EXPECT_EQ(*activity.toggle_rate(y), 1.0);
  EXPECT_EQ(*activity.toggle_rate(a), bounds.density[static_cast<std::size_t>(a)].lo);
}

// ------------------------------------------------------------------- CLI ----

std::string run_cli(const std::string& args, int& exit_code) {
  const std::string out_path = std::string(::testing::TempDir()) + "rwactivity_out.txt";
  const std::string cmd =
      std::string(RWACTIVITY_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(out_path.c_str());
  return ss.str();
}

TEST(RwactivityCli, OutputIsThreadCountInvariant) {
  const std::string fixture =
      "--lib " RW_REPO_DIR "/examples/fixtures/mini.lib " RW_REPO_DIR
      "/examples/fixtures/clean.v";
  int code1 = -1;
  int code2 = -1;
  int codeN = -1;
  const std::string one = run_cli("--threads 1 " + fixture, code1);
  const std::string two = run_cli("--threads 2 " + fixture, code2);
  const std::string many = run_cli("--threads 8 " + fixture, codeN);
  EXPECT_EQ(code1, 0) << one;
  EXPECT_EQ(code2, 0) << two;
  EXPECT_EQ(codeN, 0) << many;
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, many);
  EXPECT_NE(one.find("density"), std::string::npos);
  const std::string j1 = run_cli("--format json --threads 1 " + fixture, code1);
  const std::string j8 = run_cli("--format json --threads 8 " + fixture, codeN);
  EXPECT_EQ(j1, j8);
}

TEST(RwactivityCli, ProvenHotspotSurfacesAsAc003Warning) {
  // b frozen at 1 turns the NAND into an inverter of a; a declared toggling
  // every cycle forces n1/n2 to toggle every cycle — an unavoidable hotspot.
  int code = -1;
  const std::string out = run_cli(
      "--format json --input b=1:1 --input a=0.5:0.5 --density a=1:1 --lib " RW_REPO_DIR
      "/examples/fixtures/mini.lib " RW_REPO_DIR "/examples/fixtures/clean.v",
      code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("\"AC003\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"worst\":\"warning\""), std::string::npos) << out;
}

TEST(RwactivityCli, DeclaredQuietInputsSurfaceAsAc002Info) {
  int code = -1;
  const std::string out = run_cli(
      "--format json --density a=0:0 --density b=0:0 --density c=0:0 --lib " RW_REPO_DIR
      "/examples/fixtures/mini.lib " RW_REPO_DIR "/examples/fixtures/clean.v",
      code);
  EXPECT_EQ(code, 0) << out;  // info-only stays green
  EXPECT_NE(out.find("\"AC002\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"worst\":\"info\""), std::string::npos) << out;
}

TEST(RwactivityCli, UsageErrorsExitSixtyFour) {
  int code = -1;
  run_cli("--density bogus --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
  run_cli("--clock -1 --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
  run_cli("--threshold nope --lib x.lib y.v", code);
  EXPECT_EQ(code, 64);
}

}  // namespace
}  // namespace rw::stress
