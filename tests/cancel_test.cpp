/// Cooperative-cancellation layer: the process-wide CancelToken (requests,
/// deadlines, env arming), the poll sites in ThreadPool::parallel_for, the
/// per-solve wall-clock watchdog that turns injected stalls into retry-rung
/// failures, and the factory's in-flight-dedup waiter, which must wake with
/// a structured CancelledError instead of hanging when the leader is
/// cancelled mid-characterization.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "aging/scenario.hpp"
#include "charlib/factory.hpp"
#include "device/mosfet.hpp"
#include "device/ptm45.hpp"
#include "flow/cancel.hpp"
#include "spice/fault.hpp"
#include "spice/solver.hpp"
#include "util/thread_pool.hpp"

namespace rw {
namespace {

spice::FaultInjector& injector() { return spice::FaultInjector::instance(); }

/// Every test may trip the process-wide token / injector / watchdog; start
/// and finish inert so a failing test cannot poison its neighbors.
class CancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flow::cancel_token().clear();
    injector().disarm();
    spice::set_solve_watchdog_ms(0.0);
  }
  void TearDown() override {
    flow::cancel_token().clear();
    injector().disarm();
    spice::set_solve_watchdog_ms(0.0);
    util::set_shared_thread_count(0);
  }
};

/// The spice_test inverter bench: VDD-sourced CMOS inverter with a rising
/// ramp on the input, 4 fF load on the output.
spice::Circuit inverter_bench(spice::NodeId& in, spice::NodeId& out) {
  const device::Technology& tech = device::ptm45();
  spice::Circuit c;
  const spice::NodeId vdd = c.add_node("vdd");
  in = c.add_node("in");
  out = c.add_node("out");
  c.add_source(vdd, spice::Pwl::dc(tech.vdd_v));
  c.add_source(in, spice::Pwl::ramp(50.0, 40.0, 0.0, tech.vdd_v));
  c.add_mosfet(device::Mosfet(tech.pmos, 0.8), in, out, vdd);
  c.add_mosfet(device::Mosfet(tech.nmos, 0.4), in, out, spice::kGround);
  c.add_capacitor(out, spice::kGround, 4.0);
  return c;
}

TEST_F(CancelTest, TokenFirstReasonWinsAndClearResets) {
  flow::CancelToken& token = flow::cancel_token();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  token.request("first");
  EXPECT_TRUE(token.cancelled());
  token.request("second");
  EXPECT_EQ(token.reason(), "first");
  try {
    token.throw_if_cancelled();
    FAIL() << "tripped token did not throw";
  } catch (const flow::CancelledError& e) {
    EXPECT_EQ(e.reason(), "first");
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
  token.clear();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST_F(CancelTest, DeadlineTripsAndDisarms) {
  flow::CancelToken& token = flow::cancel_token();
  token.set_deadline_after_ms(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.cancelled());
  EXPECT_NE(token.reason().find("deadline"), std::string::npos);

  token.clear();
  token.set_deadline_after_ms(60000.0);
  EXPECT_FALSE(token.cancelled());
  token.set_deadline_after_ms(0.0);  // disarm
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.cancelled());
}

TEST_F(CancelTest, InstallDeadlineFromEnv) {
  ASSERT_EQ(setenv("RW_DEADLINE_MS", "1", 1), 0);
  EXPECT_DOUBLE_EQ(flow::install_deadline_from_env(), 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(flow::cancel_token().cancelled());
  flow::cancel_token().clear();
  ASSERT_EQ(unsetenv("RW_DEADLINE_MS"), 0);
  EXPECT_DOUBLE_EQ(flow::install_deadline_from_env(), 0.0);
  EXPECT_FALSE(flow::cancel_token().cancelled());
}

TEST_F(CancelTest, ParallelForPollsTheTokenOnEveryBody) {
  // Both the worker path and the serial (one-thread) path must poll.
  for (const std::size_t threads : {std::size_t{4}, std::size_t{1}}) {
    util::set_shared_thread_count(threads);
    flow::cancel_token().clear();
    flow::cancel_token().request("parallel_for test");
    std::atomic<int> ran{0};
    EXPECT_THROW(util::ThreadPool::shared().parallel_for(
                     1000, [&](std::size_t) { ran.fetch_add(1); }),
                 flow::CancelledError)
        << threads << " thread(s)";
    EXPECT_EQ(ran.load(), 0) << threads << " thread(s)";
  }
}

TEST_F(CancelTest, StallActionIsConfigurable) {
  injector().set_stall_ms(123.0);
  EXPECT_DOUBLE_EQ(injector().stall_ms(), 123.0);
  injector().arm_fail_nth(1, 1, spice::FaultInjector::Action::kStall);
  EXPECT_EQ(injector().on_solve_attempt("anything"), spice::FaultInjector::Action::kStall);
  EXPECT_EQ(injector().on_solve_attempt("anything"), spice::FaultInjector::Action::kNone);
  injector().set_stall_ms(50.0);
}

TEST_F(CancelTest, WatchdogTurnsStallIntoRungFailureThenLadderRecovers) {
  spice::NodeId in = -1;
  spice::NodeId out = -1;
  const spice::Circuit c = inverter_bench(in, out);
  spice::TransientOptions opt;
  opt.t_stop_ps = 500.0;
  opt.watchdog_ms = 25.0;

  // Rung 0 hangs (injected 300 ms stall) and is shot by the 25 ms watchdog;
  // rung 1 runs clean SPICE and must still produce the switching waveform.
  injector().set_stall_ms(300.0);
  injector().arm_fail_nth(1, 1, spice::FaultInjector::Action::kStall);
  const auto result = spice::simulate_transient(c, opt, {out});
  EXPECT_NEAR(result.waveform(out).back_value(), 0.0, 0.05);
  EXPECT_EQ(injector().injected_failures(), 1u);
}

TEST_F(CancelTest, WatchdogExhaustedLadderThrowsStructuredSolverError) {
  spice::NodeId in = -1;
  spice::NodeId out = -1;
  const spice::Circuit c = inverter_bench(in, out);
  spice::TransientOptions opt;
  opt.t_stop_ps = 500.0;
  opt.retry.max_retries = 1;
  // Every rung stalls; arm via the process-wide default instead of the
  // per-call option to cover the $RW_SOLVE_WATCHDOG_MS plumbing.
  spice::set_solve_watchdog_ms(25.0);
  injector().set_stall_ms(300.0);
  injector().arm_fail_nth(1, 100, spice::FaultInjector::Action::kStall);
  try {
    (void)spice::simulate_transient(c, opt, {out});
    FAIL() << "stalled ladder did not throw";
  } catch (const spice::SolverError& e) {
    EXPECT_EQ(e.stage(), "transient");
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
    EXPECT_EQ(e.attempts().size(), 2u);
  }
}

TEST_F(CancelTest, StalledSolveHonorsCancellation) {
  spice::NodeId in = -1;
  spice::NodeId out = -1;
  const spice::Circuit c = inverter_bench(in, out);
  spice::TransientOptions opt;
  opt.t_stop_ps = 500.0;
  injector().set_stall_ms(10000.0);  // would hang for 10 s without the poll
  injector().arm_fail_nth(1, 100, spice::FaultInjector::Action::kStall);

  const auto t0 = std::chrono::steady_clock::now();
  std::thread canceller([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    flow::cancel_token().request("test cancel");
  });
  EXPECT_THROW((void)spice::simulate_transient(c, opt, {out}), flow::CancelledError);
  canceller.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed_ms, 5000.0);  // cancelled long before the stall expires
}

TEST_F(CancelTest, FactoryWaiterWakesWithCancelledErrorWhenLeaderIsCancelled) {
  // Satellite of the in-flight dedup table: a waiter blocked on a leader
  // that never finishes (cancelled mid-solve) must not hang on the condition
  // variable forever — it polls the token and throws CancelledError.
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::single(60.0, 4.0);
  opts.cache_dir.clear();
  opts.cell_subset = {"INV_X1"};
  charlib::LibraryFactory factory(opts);

  injector().set_stall_ms(20000.0);  // leader parks in the stall loop
  injector().arm_fail_nth(1, 100, spice::FaultInjector::Action::kStall);

  std::atomic<int> cancelled_count{0};
  const auto request_cell = [&] {
    try {
      (void)factory.cell("INV_X1", aging::AgingScenario::fresh());
    } catch (const flow::CancelledError&) {
      cancelled_count.fetch_add(1);
    }
  };
  std::thread leader(request_cell);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // leader is in-flight
  std::thread waiter(request_cell);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // waiter is blocked
  flow::cancel_token().request("test cancel");
  leader.join();
  waiter.join();
  EXPECT_EQ(cancelled_count.load(), 2);
}

TEST_F(CancelTest, WarmDiskCacheReadPathHonorsCancellation) {
  // Regression: a SIGTERM during a fully warm library load used to be
  // noticed only at the next parallel_for poll — which never comes when
  // every cell is a disk-cache hit — so rwserved's drain could stall behind
  // a large assembly. cell()/library() must throw promptly even when no
  // characterization would run.
  const std::string cache = std::string(::testing::TempDir()) + "cancel_warm_cache_" +
                            std::to_string(::getpid());
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::coarse();
  opts.cell_subset = {"INV_X1"};
  opts.cache_dir = cache;
  const aging::AgingScenario scenario{0.5, 0.5, 10.0, true};
  {
    charlib::LibraryFactory warm(opts);
    (void)warm.library(scenario);  // publish INV_X1 to disk
  }

  flow::cancel_token().request("test cancel");
  charlib::LibraryFactory cold(opts);
  EXPECT_THROW((void)cold.library(scenario), flow::CancelledError);
  EXPECT_THROW((void)cold.cell("INV_X1", scenario), flow::CancelledError);

  // Untripped, the same warm cache serves normally.
  flow::cancel_token().clear();
  charlib::LibraryFactory again(opts);
  EXPECT_NO_THROW((void)again.library(scenario));
}

}  // namespace
}  // namespace rw
