#include <gtest/gtest.h>

#include <cmath>

#include "util/interp.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace rw::util {
namespace {

TEST(Axis, RejectsNonIncreasing) {
  EXPECT_THROW(Axis({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Axis({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Axis(std::vector<double>{}), std::invalid_argument);
}

TEST(Axis, BracketClampsToEnds) {
  const Axis axis({0.0, 1.0, 2.0, 5.0});
  EXPECT_EQ(axis.bracket(-10.0), 0u);
  EXPECT_EQ(axis.bracket(0.5), 0u);
  EXPECT_EQ(axis.bracket(1.5), 1u);
  EXPECT_EQ(axis.bracket(4.0), 2u);
  EXPECT_EQ(axis.bracket(100.0), 2u);
}

TEST(Table1D, InterpolatesLinearly) {
  const Table1D t(Axis({0.0, 10.0}), {0.0, 100.0});
  EXPECT_DOUBLE_EQ(t.lookup(2.5), 25.0);
  EXPECT_DOUBLE_EQ(t.lookup(10.0), 100.0);
}

TEST(Table1D, ExtrapolatesBeyondEnds) {
  const Table1D t(Axis({0.0, 10.0}), {0.0, 100.0});
  EXPECT_DOUBLE_EQ(t.lookup(-5.0), -50.0);
  EXPECT_DOUBLE_EQ(t.lookup(20.0), 200.0);
}

TEST(Table2D, BilinearExactAtGridPoints) {
  const Table2D t(Axis({0.0, 1.0}), Axis({0.0, 1.0, 2.0}), {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 2.0), 6.0);
}

TEST(Table2D, BilinearMidpoint) {
  const Table2D t(Axis({0.0, 1.0}), Axis({0.0, 1.0}), {0.0, 0.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 0.5), 1.0);
}

// Property: a bilinear table built from a plane reproduces the plane
// everywhere, including under extrapolation.
TEST(Table2D, PlaneReproductionProperty) {
  const Axis xs({1.0, 2.0, 4.0, 8.0});
  const Axis ys({0.5, 1.0, 3.0});
  std::vector<double> values;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < ys.size(); ++j) values.push_back(3.0 * xs[i] - 2.0 * ys[j] + 1.0);
  }
  const Table2D t(xs, ys, values);
  Rng rng(7);
  for (int k = 0; k < 200; ++k) {
    const double x = rng.uniform(-2.0, 12.0);
    const double y = rng.uniform(-1.0, 5.0);
    EXPECT_NEAR(t.lookup(x, y), 3.0 * x - 2.0 * y + 1.0, 1e-9);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const int k = rng.uniform_int(-3, 3);
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(Stats, BasicAggregates) {
  const std::vector<double> xs = {1.0, -2.0, 3.0, 0.0};
  EXPECT_DOUBLE_EQ(mean(xs), 0.5);
  EXPECT_DOUBLE_EQ(min_of(xs), -2.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(fraction_negative(xs), 0.25);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Stats, HistogramBinsAndOverflow) {
  const std::vector<double> xs = {-1.0, 0.1, 0.9, 1.5, 10.0};
  const Histogram h = make_histogram(xs, 0.0, 2.0, 2);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.underflow, 1u);
  EXPECT_EQ(h.overflow, 1u);
  EXPECT_EQ(h.total(), xs.size());
}

TEST(Strings, SplitAndTrim) {
  const auto parts = split("  a,b ,, c ", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, IndexedCellNameRoundTrip) {
  const std::string name = indexed_cell_name("AND2_X1", 0.4, 0.6);
  EXPECT_EQ(name, "AND2_X1_0.40_0.60");
  std::string base;
  double lp = 0.0;
  double ln = 0.0;
  ASSERT_TRUE(parse_indexed_cell_name(name, base, lp, ln));
  EXPECT_EQ(base, "AND2_X1");
  EXPECT_DOUBLE_EQ(lp, 0.4);
  EXPECT_DOUBLE_EQ(ln, 0.6);
}

TEST(Strings, ParseIndexedRejectsPlainNames) {
  std::string base;
  double lp = 0.0;
  double ln = 0.0;
  EXPECT_FALSE(parse_indexed_cell_name("NAND2_X1", base, lp, ln));
  EXPECT_FALSE(parse_indexed_cell_name("X", base, lp, ln));
}

}  // namespace
}  // namespace rw::util
