#include <gtest/gtest.h>

#include "charlib/factory.hpp"
#include "circuits/arith.hpp"
#include "flow/aging_aware_synthesis.hpp"
#include "flow/guardband_flow.hpp"
#include "flow/libgen.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

namespace rw::flow {
namespace {

charlib::LibraryFactory& factory() {
  static charlib::LibraryFactory f = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "INV_X2", "NAND2_X1", "NAND2_X2", "NOR2_X1",
                     "AND2_X1", "XOR2_X1", "BUF_X2",  "DFF_X1"};
    return charlib::LibraryFactory(o);
  }();
  return f;
}

synth::Ir small_datapath() {
  synth::Ir ir;
  const auto a = circuits::input_word(ir, "a", 6);
  const auto b = circuits::input_word(ir, "b", 6);
  const auto ra = circuits::register_word(ir, a);
  const auto rb = circuits::register_word(ir, b);
  const auto sum = circuits::add(ir, ra, rb);
  circuits::output_word(ir, "s", circuits::register_word(ir, sum));
  return ir;
}

netlist::Module mapped_design() {
  synth::SynthesisOptions opt;
  opt.multi_start = false;
  return synth::synthesize(small_datapath(), factory().library(aging::AgingScenario::fresh()),
                           "dp", opt)
      .module;
}

TEST(Libgen, VthOnlyScenario) {
  const auto s = worst_case_vth_only(10);
  EXPECT_FALSE(s.include_mobility);
  EXPECT_DOUBLE_EQ(s.lambda_p, 1.0);
}

TEST(Libgen, FullLambdaGridHas121Scenarios) {
  const auto grid = full_lambda_grid(10.0);
  EXPECT_EQ(grid.size(), 121u);  // the paper's 11x11 λ grid
  // All distinct ids.
  std::set<std::string> ids;
  for (const auto& s : grid) ids.insert(s.id());
  EXPECT_EQ(ids.size(), 121u);
}

TEST(Libgen, SingleOpcLibraryScalesUniformly) {
  const auto& fresh = factory().library(aging::AgingScenario::fresh());
  const auto& aged = factory().library(aging::AgingScenario::worst_case(10));
  const auto single = make_single_opc_library(fresh, aged, 947.0, 0.5);
  const auto& f = fresh.at("NAND2_X1").arcs[0].rise.delay_ps;
  const auto& s = single.at("NAND2_X1").arcs[0].rise.delay_ps;
  // Ratio is the same at every table point (uniform scaling).
  const double r00 = s.at(0, 0) / f.at(0, 0);
  const double r22 = s.at(2, 2) / f.at(2, 2);
  EXPECT_NEAR(r00, r22, 1e-9);
  EXPECT_GT(r00, 1.0);  // aged at the paper's pessimistic OPC
}

TEST(GuardbandFlow, StaticWorstCase) {
  const netlist::Module m = mapped_design();
  const auto report = static_guardband(m, factory(), aging::AgingScenario::worst_case(10));
  EXPECT_GT(report.guardband_ps(), 0.0);
  EXPECT_GT(report.aged_cp_ps, report.fresh_cp_ps);
}

TEST(GuardbandFlow, GuardbandGrowsWithLifetime) {
  const netlist::Module m = mapped_design();
  const double g1 =
      static_guardband(m, factory(), aging::AgingScenario::worst_case(1)).guardband_ps();
  const double g10 =
      static_guardband(m, factory(), aging::AgingScenario::worst_case(10)).guardband_ps();
  EXPECT_GT(g10, g1);
}

TEST(GuardbandFlow, DynamicWorkloadBelowWorstCase) {
  const netlist::Module m = mapped_design();
  util::Rng rng(5);
  const auto stimulus = [&](logicsim::CycleSimulator& sim, int) {
    for (netlist::NetId pi : m.inputs()) {
      if (pi != m.clock()) sim.set_input(pi, rng.chance(0.5));
    }
  };
  const auto dyn = dynamic_workload_guardband(m, factory(), stimulus, 200, 10.0);
  // Annotated cells carry λ indices; corners were collected.
  EXPECT_FALSE(dyn.corners.empty());
  EXPECT_NE(dyn.annotated.instances()[0].cell.find("_0."), std::string::npos);
  // The workload-specific guardband cannot exceed worst-case static stress.
  const auto worst = static_guardband(m, factory(), aging::AgingScenario::worst_case(10));
  EXPECT_GT(dyn.report.guardband_ps(), 0.0);
  EXPECT_LE(dyn.report.guardband_ps(), worst.guardband_ps() + 1e-6);
}

TEST(Containment, AwareDesignContainsGuardband) {
  const auto& fresh = factory().library(aging::AgingScenario::fresh());
  const auto& aged = factory().library(aging::AgingScenario::worst_case(10));
  synth::SynthesisOptions opt;  // full effort
  const ContainmentResult r = run_containment(small_datapath(), fresh, aged, "dp", opt);
  EXPECT_GT(r.required_guardband_ps(), 0.0);
  // The aware design never needs *more* margin than required + noise.
  EXPECT_LE(r.contained_guardband_ps(), 1.15 * r.required_guardband_ps());
  // Area stays in the same ballpark (paper: ~0.2 % overhead).
  EXPECT_LT(std::abs(r.area_overhead_pct()), 25.0);
  // Both netlists implement the same function (spot check: same I/O counts).
  EXPECT_EQ(r.conventional.module.inputs().size(), r.aging_aware.module.inputs().size());
  EXPECT_EQ(r.conventional.module.outputs().size(), r.aging_aware.module.outputs().size());
}

}  // namespace
}  // namespace rw::flow
