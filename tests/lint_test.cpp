#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "charlib/factory.hpp"
#include "charlib/opc.hpp"
#include "liberty/library.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "lint/baseline.hpp"
#include "lint/diagnostic.hpp"
#include "lint/linter.hpp"
#include "flow/guardband_flow.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "util/interp.hpp"

namespace rw::lint {
namespace {

// ---------------------------------------------------------------------------
// In-code fixtures: a tiny well-formed library and ways to break it.

util::Table2D table(std::vector<double> values) {
  return util::Table2D(util::Axis({5.0, 100.0}), util::Axis({0.5, 4.0}), std::move(values));
}

liberty::TimingArc arc(const std::string& pin, double base) {
  liberty::TimingArc a;
  a.related_pin = pin;
  a.sense = liberty::TimingSense::kNegativeUnate;
  a.rise.delay_ps = table({base, base + 10, base + 5, base + 15});
  a.rise.out_slew_ps = table({base - 2, base + 8, base + 3, base + 13});
  a.fall.delay_ps = table({base - 1, base + 9, base + 4, base + 14});
  a.fall.out_slew_ps = table({base - 3, base + 7, base + 2, base + 12});
  return a;
}

liberty::Cell comb_cell(const std::string& name, const std::vector<std::string>& inputs,
                        double base_delay) {
  liberty::Cell cell;
  cell.name = name;
  cell.family = name.substr(0, name.find('_'));
  for (const auto& in : inputs) cell.pins.push_back(liberty::Pin{in, true, false, 1.5});
  cell.pins.push_back(liberty::Pin{"Z", false, false, 0.0});
  cell.output_pin = "Z";
  cell.truth = 1;  // irrelevant for lint
  for (const auto& in : inputs) cell.arcs.push_back(arc(in, base_delay));
  return cell;
}

liberty::Library small_lib() {
  liberty::Library lib("testlib");
  lib.add_cell(comb_cell("INV_X1", {"A"}, 10.0));
  lib.add_cell(comb_cell("NAND2_X1", {"A", "B"}, 14.0));
  return lib;
}

/// Runs `linter` over (module, library) and returns the rule ids seen.
std::multiset<std::string> rule_ids(const std::vector<Diagnostic>& diags) {
  std::multiset<std::string> ids;
  for (const auto& d : diags) ids.insert(d.rule_id);
  return ids;
}

std::vector<Diagnostic> lint_netlist(const netlist::Module& m, const liberty::Library& lib) {
  LintSubject subject;
  subject.module = &m;
  subject.library = &lib;
  return Linter::netlist_linter().run(subject);
}

std::vector<Diagnostic> lint_library(const liberty::Library& lib,
                                     const liberty::Library* fresh = nullptr,
                                     const charlib::OpcGrid* grid = nullptr) {
  LintSubject subject;
  subject.library = &lib;
  subject.fresh = fresh;
  subject.expected_grid = grid;
  return Linter::library_linter().run(subject);
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& id, Severity sev) {
  for (const auto& d : diags) {
    if (d.rule_id == id && d.severity == sev) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Netlist rules: one deliberately broken fixture per rule.

TEST(NetlistRules, CleanDesignHasNoFindings) {
  const liberty::Library lib = small_lib();
  netlist::Module m("clean");
  const auto a = m.add_net("a");
  const auto b = m.add_net("b");
  m.mark_input(a);
  m.mark_input(b);
  const auto n1 = m.add_net("n1");
  const auto y = m.add_net("y");
  m.add_instance("u1", "NAND2_X1", {a, b}, n1);
  m.add_instance("u2", "INV_X1", {n1}, y);
  m.mark_output(y);
  EXPECT_TRUE(lint_netlist(m, lib).empty());
}

TEST(NetlistRules, CombinationalCycle) {
  const liberty::Library lib = small_lib();
  netlist::Module m("cyc");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto n1 = m.add_net("n1");
  const auto n2 = m.add_net("n2");
  m.add_instance("g1", "NAND2_X1", {n2, a}, n1);
  m.add_instance("g2", "INV_X1", {n1}, n2);
  m.mark_output(n2);
  const auto diags = lint_netlist(m, lib);
  EXPECT_TRUE(has_rule(diags, rules::kCombCycle, Severity::kError));
  // The cycle is reported exactly once and names the loop path.
  EXPECT_EQ(rule_ids(diags).count(rules::kCombCycle), 1u);
  for (const auto& d : diags) {
    if (d.rule_id == rules::kCombCycle) {
      EXPECT_NE(d.message.find("g1"), std::string::npos);
    }
  }
}

TEST(NetlistRules, UndrivenNet) {
  const liberty::Library lib = small_lib();
  netlist::Module m("undrv");
  const auto x = m.add_net("x");  // never driven, not an input
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1", {x}, y);
  m.mark_output(y);
  EXPECT_TRUE(has_rule(lint_netlist(m, lib), rules::kUndrivenNet, Severity::kError));
}

TEST(NetlistRules, MultiDrivenNet) {
  const liberty::Library lib = small_lib();
  netlist::Module m("multi");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1", {a}, y);
  m.add_instance_lenient("u2", "INV_X1", {a}, y);  // second driver
  m.mark_output(y);
  const auto diags = lint_netlist(m, lib);
  EXPECT_TRUE(has_rule(diags, rules::kMultiDrivenNet, Severity::kError));
}

TEST(NetlistRules, DanglingOutputIsWarning) {
  const liberty::Library lib = small_lib();
  netlist::Module m("dangle");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  const auto dead = m.add_net("dead");
  m.add_instance("u1", "INV_X1", {a}, y);
  m.add_instance("u2", "INV_X1", {a}, dead);  // feeds nothing, not a PO
  m.mark_output(y);
  EXPECT_TRUE(has_rule(lint_netlist(m, lib), rules::kDanglingOutput, Severity::kWarning));
}

TEST(NetlistRules, UnknownCell) {
  const liberty::Library lib = small_lib();
  netlist::Module m("unk");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "MYSTERY_X9", {a}, y);
  m.mark_output(y);
  EXPECT_TRUE(has_rule(lint_netlist(m, lib), rules::kUnknownCell, Severity::kError));
}

TEST(NetlistRules, PortArityMismatch) {
  const liberty::Library lib = small_lib();
  netlist::Module m("arity");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "NAND2_X1", {a}, y);  // NAND2 wants 2 inputs
  m.mark_output(y);
  EXPECT_TRUE(has_rule(lint_netlist(m, lib), rules::kPortArity, Severity::kError));
}

// ---------------------------------------------------------------------------
// Module::check / validate collect every violation.

TEST(ModuleCheck, CollectsAllViolationsAndValidateAggregates) {
  netlist::Module m("manybad");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto x = m.add_net("x");  // undriven, used
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1", {x}, y);
  m.add_instance_lenient("u2", "INV_X1", {a}, y);      // multi-driver
  m.add_instance_lenient("u3", "INV_X1", {a}, netlist::kNoNet);  // no output
  m.mark_output(y);
  const auto diags = m.check();
  const auto ids = rule_ids(diags);
  EXPECT_EQ(ids.count(rules::kUndrivenNet), 1u);
  EXPECT_EQ(ids.count(rules::kMultiDrivenNet), 1u);
  EXPECT_EQ(ids.count(rules::kPortArity), 1u);
  EXPECT_EQ(diags.size(), 3u);
  try {
    m.validate();
    FAIL() << "validate() must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 violation(s)"), std::string::npos);
    EXPECT_NE(what.find(rules::kUndrivenNet), std::string::npos);
    EXPECT_NE(what.find(rules::kMultiDrivenNet), std::string::npos);
    EXPECT_NE(what.find(rules::kPortArity), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Library rules.

TEST(LibraryRules, CleanLibraryHasNoFindings) {
  EXPECT_TRUE(lint_library(small_lib()).empty());
}

TEST(LibraryRules, NegativeNldmValue) {
  // A negative slew (or NaN anywhere) is corrupt data: error.
  liberty::Library bad_slew("negslew");
  liberty::Cell cell = comb_cell("INV_X1", {"A"}, 10.0);
  cell.arcs[0].rise.out_slew_ps.at(0, 0) = -4.0;
  bad_slew.add_cell(cell);
  EXPECT_TRUE(has_rule(lint_library(bad_slew), rules::kNegativeNldm, Severity::kError));

  liberty::Library nan_lib("nandelay");
  cell = comb_cell("INV_X1", {"A"}, 10.0);
  cell.arcs[0].fall.delay_ps.at(0, 0) = std::nan("");
  nan_lib.add_cell(cell);
  EXPECT_TRUE(has_rule(lint_library(nan_lib), rules::kNegativeNldm, Severity::kError));

  // A negative *delay* is a legitimate artifact of the 50%-to-50% convention
  // at extreme (slow slew, tiny load) corners: warning only.
  liberty::Library neg_delay("negdelay");
  cell = comb_cell("INV_X1", {"A"}, 10.0);
  cell.arcs[0].rise.delay_ps.at(0, 0) = -4.0;
  neg_delay.add_cell(cell);
  const auto diags = lint_library(neg_delay);
  EXPECT_TRUE(has_rule(diags, rules::kNegativeNldm, Severity::kWarning));
  EXPECT_FALSE(has_rule(diags, rules::kNegativeNldm, Severity::kError));
}

TEST(LibraryRules, NonMonotoneTable) {
  liberty::Library lib("mono");
  liberty::Cell cell = comb_cell("INV_X1", {"A"}, 10.0);
  // Delay *drops* from load 0.5 fF to 4 fF at the first slew point.
  cell.arcs[0].rise.delay_ps.at(0, 0) = 30.0;
  lib.add_cell(cell);
  EXPECT_TRUE(has_rule(lint_library(lib), rules::kNonMonotoneNldm, Severity::kWarning));
}

TEST(LibraryRules, GridMismatchAgainstExpectedGrid) {
  const liberty::Library lib = small_lib();  // 2x2 tables
  const charlib::OpcGrid grid = charlib::OpcGrid::coarse();  // expects 3x3
  EXPECT_TRUE(has_rule(lint_library(lib, nullptr, &grid), rules::kGridMismatch,
                       Severity::kWarning));
  // Without an expected grid the (internally consistent) library is clean.
  EXPECT_TRUE(lint_library(lib).empty());
}

TEST(LibraryRules, MissingTimingArc) {
  liberty::Library lib("noarc");
  liberty::Cell cell = comb_cell("NAND2_X1", {"A", "B"}, 14.0);
  cell.arcs.pop_back();  // drop the B arc
  lib.add_cell(cell);
  EXPECT_TRUE(has_rule(lint_library(lib), rules::kMissingArc, Severity::kError));
}

TEST(LibraryRules, AgedFasterThanFreshInversion) {
  const liberty::Library fresh = small_lib();
  liberty::Library aged("aged");
  liberty::Cell cell = comb_cell("INV_X1", {"A"}, 10.0);
  cell.arcs[0].rise.delay_ps.transform([](double v) { return v * 0.5; });  // "faster" when aged
  aged.add_cell(cell);
  EXPECT_TRUE(
      has_rule(lint_library(aged, &fresh), rules::kAgedFasterThanFresh, Severity::kWarning));
  // Against itself (same pointer) the rule stays quiet.
  EXPECT_TRUE(lint_library(fresh, &fresh).empty());
}

TEST(LibraryRules, FallbackMarkersAreWarned) {
  liberty::Library lib("fallback");
  liberty::Cell cell = comb_cell("NAND2_X1", {"A", "B"}, 14.0);
  cell.fallbacks.push_back(liberty::FallbackPoint{"A", true, 1, 0});
  cell.fallbacks.push_back(liberty::FallbackPoint{"B", false, 0, 1});
  lib.add_cell(cell);
  lib.add_cell(comb_cell("INV_X1", {"A"}, 10.0));  // healthy; must stay quiet
  const auto diags = lint_library(lib);
  EXPECT_TRUE(has_rule(diags, rules::kFallbackPoint, Severity::kWarning));
  ASSERT_EQ(rule_ids(diags).count(rules::kFallbackPoint), 1u);  // one finding per cell
  for (const auto& d : diags) {
    if (d.rule_id != rules::kFallbackPoint) continue;
    EXPECT_NE(d.location.find("NAND2_X1"), std::string::npos);
    EXPECT_NE(d.message.find("A:rise:(1,0)"), std::string::npos);
    EXPECT_NE(d.message.find("2 OPC point(s)"), std::string::npos);
  }
}

TEST(LibraryRules, FallbackMarkersSurviveLibertyRoundTrip) {
  liberty::Library lib("roundtrip");
  liberty::Cell cell = comb_cell("NAND2_X1", {"A", "B"}, 14.0);
  cell.fallbacks.push_back(liberty::FallbackPoint{"A", true, 1, 0});
  lib.add_cell(cell);
  const liberty::Library reparsed = liberty::parse_library(liberty::write_library(lib));
  const liberty::Cell* c = reparsed.find("NAND2_X1");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->fallbacks.size(), 1u);
  EXPECT_EQ(c->fallbacks[0], (liberty::FallbackPoint{"A", true, 1, 0}));
  EXPECT_TRUE(has_rule(lint_library(reparsed), rules::kFallbackPoint, Severity::kWarning));
}

TEST(LibraryRules, InterpBoundOverToleranceIsWarned) {
  // LB007 fires only when the certified rw_interp bound exceeds the flow
  // tolerance ($RW_CHAR_INTERP_TOL_PS, default 2.0 ps).
  liberty::Library lib("interp");
  liberty::Cell loose = comb_cell("NAND2_X1", {"A", "B"}, 14.0);
  loose.interp = liberty::InterpMarker{0.2, 0.4, 0.0, 0.2, 5.5};  // > 2.0 ps
  lib.add_cell(loose);
  liberty::Cell tight = comb_cell("INV_X1", {"A"}, 10.0);
  tight.interp = liberty::InterpMarker{0.0, 0.2, 0.0, 0.2, 0.3};  // within tolerance
  lib.add_cell(tight);

  const auto diags = lint_library(lib);
  EXPECT_TRUE(has_rule(diags, rules::kInterpBound, Severity::kWarning));
  ASSERT_EQ(rule_ids(diags).count(rules::kInterpBound), 1u);  // only the loose cell
  for (const auto& d : diags) {
    if (d.rule_id != rules::kInterpBound) continue;
    EXPECT_NE(d.location.find("NAND2_X1"), std::string::npos);
    EXPECT_NE(d.message.find("5.500 ps"), std::string::npos);
    EXPECT_NE(d.fix_hint.find("RW_CHAR_INTERP_TOL_PS"), std::string::npos);
  }
}

TEST(LibraryRules, InterpMarkerSurvivesLibertyRoundTripIntoLint) {
  liberty::Library lib("roundtrip");
  liberty::Cell cell = comb_cell("NAND2_X1", {"A", "B"}, 14.0);
  cell.interp = liberty::InterpMarker{0.2, 0.4, 0.2, 0.4, 7.25};
  lib.add_cell(cell);
  const liberty::Library reparsed = liberty::parse_library(liberty::write_library(lib));
  const liberty::Cell* c = reparsed.find("NAND2_X1");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->interp.has_value());
  EXPECT_NEAR(c->interp->bound_ps, 7.25, 1e-6);
  EXPECT_TRUE(has_rule(lint_library(reparsed), rules::kInterpBound, Severity::kWarning));
}

// ---------------------------------------------------------------------------
// Annotation rules.

TEST(AnnotationRules, DutyOutOfRange) {
  const liberty::Library lib = small_lib();
  netlist::Module m("ann");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1_1.20_0.50", {a}, y);
  m.mark_output(y);
  const auto diags = lint_netlist(m, lib);
  EXPECT_TRUE(has_rule(diags, rules::kDutyOutOfRange, Severity::kError));
  // Out-of-range corners are not additionally reported as missing corners
  // or unknown cells.
  EXPECT_EQ(rule_ids(diags).count(rules::kMissingCorner), 0u);
  EXPECT_EQ(rule_ids(diags).count(rules::kUnknownCell), 0u);
}

TEST(AnnotationRules, MissingCorner) {
  liberty::Library lib("merged");
  lib.add_cell(comb_cell("INV_X1_0.40_0.60", {"A"}, 12.0));
  netlist::Module m("ann");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1_0.50_0.50", {a}, y);  // corner never merged
  m.mark_output(y);
  EXPECT_TRUE(has_rule(lint_netlist(m, lib), rules::kMissingCorner, Severity::kError));
}

TEST(AnnotationRules, UnannotatedInstanceAmidAgedCorners) {
  liberty::Library lib("mixed");
  lib.add_cell(comb_cell("INV_X1", {"A"}, 10.0));
  lib.add_cell(comb_cell("INV_X1_1.00_1.00", {"A"}, 14.0));
  netlist::Module m("ann");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1", {a}, y);  // silently times as fresh
  m.mark_output(y);
  EXPECT_TRUE(has_rule(lint_netlist(m, lib), rules::kUnannotated, Severity::kWarning));
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing: formatting, JSON golden, determinism.

TEST(Diagnostics, JsonGolden) {
  const std::vector<Diagnostic> diags = {
      {"NL001", Severity::kError, "top:inst g1", "combinational cycle: g1 -> g2 -> g1",
       "break the loop"},
      {"NL004", Severity::kWarning, "top:inst u9", "output net n\"9 feeds nothing", ""},
  };
  const std::string expected =
      "{\"diagnostics\":["
      "{\"rule\":\"NL001\",\"severity\":\"error\",\"location\":\"top:inst g1\","
      "\"message\":\"combinational cycle: g1 -> g2 -> g1\",\"fix_hint\":\"break the loop\"},"
      "{\"rule\":\"NL004\",\"severity\":\"warning\",\"location\":\"top:inst u9\","
      "\"message\":\"output net n\\\"9 feeds nothing\",\"fix_hint\":\"\"}"
      "],\"counts\":{\"error\":1,\"warning\":1,\"info\":0},\"worst\":\"error\"}";
  EXPECT_EQ(to_json(diags), expected);
  EXPECT_EQ(to_json({}),
            "{\"diagnostics\":[],\"counts\":{\"error\":0,\"warning\":0,\"info\":0},"
            "\"worst\":\"info\"}");
}

TEST(Diagnostics, FormatAndSeverityHelpers) {
  const Diagnostic d{"LB001", Severity::kError, "lib:INV_X1", "bad value", "re-characterize"};
  EXPECT_EQ(d.format(), "error[LB001] lib:INV_X1: bad value (fix: re-characterize)");
  const std::vector<Diagnostic> diags = {d, {"NL004", Severity::kWarning, "", "w", ""}};
  EXPECT_EQ(worst_severity(diags), Severity::kError);
  EXPECT_EQ(count(diags, Severity::kWarning), 1u);
  EXPECT_EQ(worst_severity({}), Severity::kInfo);
}

TEST(Linter, ParallelAndSerialRunsAgree) {
  const liberty::Library lib = small_lib();
  netlist::Module m("cyc");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto n1 = m.add_net("n1");
  const auto n2 = m.add_net("n2");
  m.add_instance("g1", "NAND2_X1", {n2, a}, n1);
  m.add_instance_lenient("g2", "INV_X1", {n1}, n2);
  m.add_instance_lenient("g3", "INV_X1", {n1}, n2);  // multi-driver on top of the cycle
  m.mark_output(n2);
  LintSubject subject;
  subject.module = &m;
  subject.library = &lib;
  const Linter linter = Linter::all_rules();
  const auto par = linter.run(subject, /*parallel=*/true);
  const auto ser = linter.run(subject, /*parallel=*/false);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_EQ(par[i].rule_id, ser[i].rule_id);
    EXPECT_EQ(par[i].location, ser[i].location);
    EXPECT_EQ(par[i].message, ser[i].message);
  }
}

TEST(Linter, LintOrThrowCarriesDiagnostics) {
  const liberty::Library lib = small_lib();
  netlist::Module m("bad");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "MYSTERY_X9", {a}, y);
  m.mark_output(y);
  LintSubject subject;
  subject.module = &m;
  subject.library = &lib;
  try {
    lint_or_throw(Linter::netlist_linter(), subject);
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].rule_id, rules::kUnknownCell);
    EXPECT_NE(std::string(e.what()).find("MYSTERY_X9"), std::string::npos);
  }
  // Warnings alone do not throw at the default threshold.
  netlist::Module w("warn");
  const auto b = w.add_net("b");
  w.mark_input(b);
  const auto dead = w.add_net("dead");
  w.add_instance("u1", "INV_X1", {b}, dead);
  subject.module = &w;
  const auto diags = lint_or_throw(Linter::netlist_linter(), subject);
  EXPECT_EQ(worst_severity(diags), Severity::kWarning);
  EXPECT_THROW(lint_or_throw(Linter::netlist_linter(), subject, Severity::kWarning), LintError);
}

// ---------------------------------------------------------------------------
// AC rules: the switching-activity analysis behind rwactivity.

/// y = INV(a) with a declared input model rich enough to pin y's density.
netlist::Module inverter_module() {
  netlist::Module m("t");
  const auto a = m.add_net("a");
  m.mark_input(a);
  const auto y = m.add_net("y");
  m.add_instance("u1", "INV_X1", {a}, y);
  m.mark_output(y);
  return m;
}

TEST(ActivityRules, MeasuredRateOutsideBoundsIsAc001ErrorWithGoldenJson) {
  const liberty::Library lib = small_lib();
  const netlist::Module m = inverter_module();
  stress::ActivityOptions options;
  options.probability.input_intervals["a"] = stress::Interval{0.5, 0.5};
  options.input_densities["a"] = stress::Interval{0.2, 0.2};  // y inherits [0.2, 0.2]
  ActivityMeasurement measured;
  measured.toggle_rates = {{"y", 0.9}};

  LintSubject subject;
  subject.module = &m;
  subject.library = &lib;
  subject.activity = &options;
  subject.measured_activity = &measured;
  Linter linter;
  linter.add_rules(activity_rules());
  const auto diags = linter.run(subject);
  const std::string expected =
      "{\"diagnostics\":["
      "{\"rule\":\"AC001\",\"severity\":\"error\",\"location\":\"t:net y\","
      "\"message\":\"measured toggle rate 0.900000 escapes the proven activity bound "
      "[0.2000, 0.2000]\",\"fix_hint\":\"the measurement contradicts a "
      "workload-independent bound; check the warm-up window, the declared input model, "
      "and the sampling convention\"}"
      "],\"counts\":{\"error\":1,\"warning\":0,\"info\":0},\"worst\":\"error\"}";
  EXPECT_EQ(to_json(diags), expected);

  // A rate inside the proven interval (up to slack) stays silent.
  measured.toggle_rates = {{"y", 0.2}, {"absent_net", 5.0}};
  EXPECT_TRUE(linter.run(subject).empty());
}

TEST(ActivityRules, QuietNetsAndHotspotsAreReported) {
  const liberty::Library lib = small_lib();
  const netlist::Module m = inverter_module();

  // Declared-quiet input, free probability: y provably never toggles but is
  // not a proven constant — AC002, not SP002's territory.
  stress::ActivityOptions quiet;
  quiet.input_densities["a"] = stress::Interval{0.0, 0.0};
  LintSubject subject;
  subject.module = &m;
  subject.library = &lib;
  subject.activity = &quiet;
  Linter linter;
  linter.add_rules(activity_rules());
  auto diags = linter.run(subject);
  EXPECT_TRUE(has_rule(diags, rules::kProvenQuiet, Severity::kInfo));
  EXPECT_FALSE(has_rule(diags, rules::kActivityHotspot, Severity::kWarning));

  // Input toggling every cycle: y's lower bound reaches the default hotspot
  // threshold, with the blame pointing at the driving pin.
  stress::ActivityOptions hot;
  hot.probability.input_intervals["a"] = stress::Interval{0.5, 0.5};
  hot.input_densities["a"] = stress::Interval{1.0, 1.0};
  subject.activity = &hot;
  diags = linter.run(subject);
  ASSERT_TRUE(has_rule(diags, rules::kActivityHotspot, Severity::kWarning));
  bool blamed = false;
  for (const auto& d : diags) {
    if (d.rule_id == rules::kActivityHotspot &&
        d.message.find("pin net a") != std::string::npos) {
      blamed = true;
    }
  }
  EXPECT_TRUE(blamed);
  // A higher threshold silences it.
  subject.activity_hotspot_threshold = 1.5;
  EXPECT_FALSE(has_rule(linter.run(subject), rules::kActivityHotspot, Severity::kWarning));
}

TEST(ActivityRules, LintOrThrowRefusesContradictedMeasurements) {
  const liberty::Library lib = small_lib();
  const netlist::Module m = inverter_module();
  stress::ActivityOptions options;
  options.probability.input_intervals["a"] = stress::Interval{0.5, 0.5};
  options.input_densities["a"] = stress::Interval{0.0, 0.1};
  ActivityMeasurement measured;
  measured.toggle_rates = {{"y", 0.75}};
  measured.slack = 1e-9;
  LintSubject subject;
  subject.module = &m;
  subject.library = &lib;
  subject.activity = &options;
  subject.measured_activity = &measured;
  try {
    lint_or_throw(Linter::netlist_linter(), subject);
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    EXPECT_EQ(rule_ids(e.diagnostics()).count(std::string(rules::kToggleOutsideBounds)), 1u);
    EXPECT_NE(std::string(e.what()).find("AC001"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The flows refuse bad inputs with the same diagnostics rwlint reports.

TEST(FlowPreflight, GuardbandFlowRefusesBrokenNetlist) {
  charlib::LibraryFactory::Options opts;
  opts.characterize.grid = charlib::OpcGrid::coarse();
  opts.cell_subset = {"INV_X1", "NAND2_X1"};
  charlib::LibraryFactory factory(opts);

  // The same three defects as tests/fixtures/broken.v: a combinational
  // cycle, a 2x-driven net, and an out-of-range duty-cycle index.
  netlist::Module m("broken");
  const auto a = m.add_net("a");
  const auto b = m.add_net("b");
  m.mark_input(a);
  m.mark_input(b);
  const auto n1 = m.add_net("n1");
  const auto n2 = m.add_net("n2");
  const auto mm = m.add_net("m");
  const auto z = m.add_net("z");
  m.add_instance("u1", "NAND2_X1", {n2, a}, n1);
  m.add_instance("u2", "INV_X1", {n1}, n2);
  m.add_instance("u3", "NAND2_X1", {a, b}, mm);
  m.add_instance_lenient("u4", "INV_X1", {a}, mm);
  m.add_instance("u5", "INV_X1_1.20_0.50", {b}, z);
  m.mark_output(mm);
  m.mark_output(z);

  try {
    flow::static_guardband(m, factory, aging::AgingScenario::worst_case(10.0));
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    const auto ids = rule_ids(e.diagnostics());
    EXPECT_EQ(ids.count(rules::kCombCycle), 1u);
    EXPECT_EQ(ids.count(rules::kMultiDrivenNet), 1u);
    EXPECT_EQ(ids.count(rules::kDutyOutOfRange), 1u);
    EXPECT_EQ(e.diagnostics().size(), 3u) << format_report(e.diagnostics());
  }
}

// ---------------------------------------------------------------------------
// End-to-end CLI: rwlint over the shipped fixtures (acceptance criteria).

std::string run_cli(const std::string& args, int& exit_code) {
  const std::string out_path = std::string(::testing::TempDir()) + "rwlint_out.txt";
  const std::string cmd = std::string(RWLINT_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(out_path.c_str());
  return ss.str();
}

std::multiset<std::string> json_rule_ids(const std::string& json) {
  std::multiset<std::string> ids;
  const std::string key = "\"rule\":\"";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + 1)) {
    const std::size_t start = pos + key.size();
    ids.insert(json.substr(start, json.find('"', start) - start));
  }
  return ids;
}

TEST(RwlintCli, BrokenFixtureReportsExactlyThreeRuleIdsAsJson) {
  int exit_code = 0;
  const std::string json =
      run_cli("--format json --lib " RW_REPO_DIR "/examples/fixtures/mini.lib " RW_REPO_DIR
              "/tests/fixtures/broken.v",
              exit_code);
  EXPECT_EQ(exit_code, 2) << json;
  const auto ids = json_rule_ids(json);
  EXPECT_EQ(ids.size(), 3u) << json;
  EXPECT_EQ(ids.count(rules::kCombCycle), 1u) << json;
  EXPECT_EQ(ids.count(rules::kMultiDrivenNet), 1u) << json;
  EXPECT_EQ(ids.count(rules::kDutyOutOfRange), 1u) << json;
  EXPECT_NE(json.find("\"worst\":\"error\""), std::string::npos);
}

TEST(RwlintCli, ExampleFixtureSuiteIsClean) {
  int exit_code = -1;
  std::string out = run_cli("--lib " RW_REPO_DIR "/examples/fixtures/mini.lib " RW_REPO_DIR
                            "/examples/fixtures/clean.v",
                            exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  out = run_cli("--lib " RW_REPO_DIR "/examples/fixtures/merged.lib " RW_REPO_DIR
                "/examples/fixtures/annotated.v",
                exit_code);
  EXPECT_EQ(exit_code, 0) << out;
}

TEST(RwlintCli, UsageErrorsExit64) {
  int exit_code = -1;
  run_cli("--format yaml --lib x.lib", exit_code);
  EXPECT_EQ(exit_code, 64);
  run_cli("", exit_code);
  EXPECT_EQ(exit_code, 64);
}

// ---------------------------------------------------------------------------
// Rule-catalog completeness: the catalog, `--explain`, and the README rule
// table must stay in lockstep, and everything the fixtures emit is cataloged.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RuleCatalog, EveryEntryHasExplainTextAndExactlyOneReadmeRow) {
  const std::string readme = read_file(RW_REPO_DIR "/README.md");
  ASSERT_FALSE(readme.empty());
  ASSERT_FALSE(rule_catalog().empty());
  std::set<std::string> seen;
  for (const RuleInfo& info : rule_catalog()) {
    ASSERT_NE(info.id, nullptr);
    EXPECT_TRUE(seen.insert(info.id).second) << "duplicate catalog id " << info.id;
    // Non-empty --explain material.
    ASSERT_NE(info.summary, nullptr) << info.id;
    ASSERT_NE(info.fix_hint, nullptr) << info.id;
    EXPECT_GT(std::string(info.summary).size(), 0u) << info.id;
    EXPECT_GT(std::string(info.fix_hint).size(), 0u) << info.id;
    // Exactly one README rule-table row "| <id> |".
    const std::string row = "\n| " + std::string(info.id) + " |";
    const std::size_t first = readme.find(row);
    EXPECT_NE(first, std::string::npos) << info.id << " missing from the README rule table";
    if (first != std::string::npos) {
      EXPECT_EQ(readme.find(row, first + 1), std::string::npos)
          << info.id << " appears more than once in the README rule table";
    }
    // The CLI renders the same entry.
    int exit_code = -1;
    const std::string out = run_cli("--explain " + std::string(info.id), exit_code);
    EXPECT_EQ(exit_code, 0) << info.id;
    EXPECT_NE(out.find(info.id), std::string::npos) << out;
    EXPECT_NE(out.find(info.summary), std::string::npos) << out;
  }
  EXPECT_EQ(find_rule_info("ZZ999"), nullptr);
}

// ---------------------------------------------------------------------------
// SV001: stale serve artifacts in a characterization cache.

TEST(ServeHygiene, StaleLeaseIsFlaggedAndLiveLeaseIsNot) {
  const std::string dir = std::string(::testing::TempDir()) + "sv001_cache_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir + "/3x3/L0.50_0.50_y10");
  // A dead holder's lease (pid far above pid_max) and a live one (our own).
  std::ofstream(dir + "/3x3/L0.50_0.50_y10/NAND2_X1.lib.lease")
      << "{\"pid\":999999999,\"ttl_ms\":60000}\n";
  std::ofstream(dir + "/3x3/L0.50_0.50_y10/INV_X1.lib.lease")
      << "{\"pid\":" << ::getpid() << ",\"ttl_ms\":600000}\n";

  Linter linter;
  linter.add_rules(serve_rules());
  LintSubject subject;
  subject.cache_dir = dir;
  const std::vector<Diagnostic> report = linter.run(subject);
  ASSERT_EQ(report.size(), 1u) << format_report(report);
  EXPECT_EQ(report[0].rule_id, rules::kStaleServeArtifact);
  EXPECT_EQ(report[0].severity, Severity::kWarning);
  EXPECT_NE(report[0].location.find("NAND2_X1.lib.lease"), std::string::npos);
  EXPECT_NE(report[0].message.find("dead"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ServeHygiene, CacheDirFlagDrivesSv001ThroughTheCli) {
  const std::string dir = std::string(::testing::TempDir()) + "sv001_cli_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/torn.lease") << "garbage";

  int exit_code = -1;
  const std::string out = run_cli("--cache-dir " + dir, exit_code);
  EXPECT_EQ(exit_code, 1) << out;  // warnings only
  EXPECT_NE(out.find("SV001"), std::string::npos) << out;

  // A clean cache lints clean.
  std::filesystem::remove(dir + "/torn.lease");
  const std::string clean = run_cli("--cache-dir " + dir, exit_code);
  EXPECT_EQ(exit_code, 0) << clean;
  EXPECT_EQ(clean.find("SV001"), std::string::npos) << clean;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// SV002: debris of the GC protocol — tombstones and mismatched usage stamps.

TEST(ServeHygiene, GcDebrisIsFlaggedAndHealthyPairsAreNot) {
  const std::string dir = std::string(::testing::TempDir()) + "sv002_cache_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  const std::string grid = dir + "/3x3/L0.50_0.50_y10";
  std::filesystem::create_directories(grid);
  // Orphan tombstone: a sweep was killed after writing the marker.
  std::ofstream(grid + "/TOMB.lib") << "library (t) {}\n";
  std::ofstream(grid + "/TOMB.lib.tomb") << "";
  // Stamp without its entry (crash between eviction steps, or hand-deleted).
  std::ofstream(grid + "/ORPHAN.lib.stamp") << "";
  // Entry without a stamp (pre-GC cache or crash right after publish).
  std::ofstream(grid + "/BARE.lib") << "library (b) {}\n";
  // A healthy pair must stay silent.
  std::ofstream(grid + "/GOOD.lib") << "library (g) {}\n";
  std::ofstream(grid + "/GOOD.lib.stamp") << "";

  Linter linter;
  linter.add_rules(serve_rules());
  LintSubject subject;
  subject.cache_dir = dir;
  const std::vector<Diagnostic> report = linter.run(subject);
  ASSERT_EQ(report.size(), 3u) << format_report(report);
  for (const Diagnostic& d : report) {
    EXPECT_EQ(d.rule_id, rules::kOrphanGcArtifact);
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.location.find("GOOD"), std::string::npos) << d.location;
  }
  const std::string all = format_report(report);
  EXPECT_NE(all.find("TOMB.lib.tomb"), std::string::npos) << all;
  EXPECT_NE(all.find("interrupted sweep"), std::string::npos) << all;
  EXPECT_NE(all.find("ORPHAN.lib.stamp"), std::string::npos) << all;
  EXPECT_NE(all.find("BARE.lib"), std::string::npos) << all;
  std::filesystem::remove_all(dir);
}

TEST(ServeHygiene, TombstoneSuppressesTheStampAndLibFindingsForItsEntry) {
  // Mid-eviction crash leaves lib+stamp+tomb (or just stamp+tomb); the
  // tombstone diagnostic alone tells the whole story — no double report.
  const std::string dir = std::string(::testing::TempDir()) + "sv002_tomb_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/X.lib.tomb") << "";
  std::ofstream(dir + "/X.lib.stamp") << "";

  Linter linter;
  linter.add_rules(serve_rules());
  LintSubject subject;
  subject.cache_dir = dir;
  const std::vector<Diagnostic> report = linter.run(subject);
  ASSERT_EQ(report.size(), 1u) << format_report(report);
  EXPECT_EQ(report[0].rule_id, rules::kOrphanGcArtifact);
  EXPECT_NE(report[0].location.find("X.lib.tomb"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ServeHygiene, CacheDirFlagDrivesSv002ThroughTheCli) {
  const std::string dir = std::string(::testing::TempDir()) + "sv002_cli_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/NAND2_X1.lib.tomb") << "";

  int exit_code = -1;
  const std::string out = run_cli("--cache-dir " + dir, exit_code);
  EXPECT_EQ(exit_code, 1) << out;  // warnings only
  EXPECT_NE(out.find("SV002"), std::string::npos) << out;

  // Completing the sweep (tombstone gone) lints clean.
  std::filesystem::remove(dir + "/NAND2_X1.lib.tomb");
  const std::string clean = run_cli("--cache-dir " + dir, exit_code);
  EXPECT_EQ(exit_code, 0) << clean;
  EXPECT_EQ(clean.find("SV002"), std::string::npos) << clean;
  std::filesystem::remove_all(dir);
}

TEST(RuleCatalog, EveryFixtureDiagnosticIsCataloged) {
  int exit_code = -1;
  const std::string json =
      run_cli("--format json --lib " RW_REPO_DIR "/examples/fixtures/mini.lib " RW_REPO_DIR
              "/tests/fixtures/broken.v",
              exit_code);
  const auto ids = json_rule_ids(json);
  ASSERT_FALSE(ids.empty()) << json;
  for (const std::string& id : ids) {
    EXPECT_NE(find_rule_info(id), nullptr) << id << " is emitted but not cataloged";
  }
}

// ---------------------------------------------------------------------------
// Baselines: record once, suppress exact matches, fail on new findings.

TEST(Baseline, KeyFoldsNewlinesAndIgnoresFixHint) {
  Diagnostic d{"NL001", Severity::kError, "top:u1", "line one\nline two", "hint A"};
  const std::string key = baseline_key(d);
  EXPECT_EQ(key.find('\n'), std::string::npos);
  Diagnostic d2 = d;
  d2.fix_hint = "completely different hint";
  EXPECT_EQ(baseline_key(d2), key);
  d2.message = "other message";
  EXPECT_NE(baseline_key(d2), key);
}

TEST(Baseline, EncodeReadSuppressRoundTrip) {
  const std::vector<Diagnostic> diags = {
      {"NL002", Severity::kError, "top:n1", "floating net", ""},
      {"SP002", Severity::kWarning, "top:n2", "stuck at 0", "remove it"},
      {"NL002", Severity::kError, "top:n1", "floating net", ""},  // duplicate key
  };
  const std::string path = std::string(::testing::TempDir()) + "baseline_roundtrip.txt";
  std::ofstream(path) << encode_baseline(diags);
  std::set<std::string> keys;
  ASSERT_TRUE(read_baseline(path, keys));
  EXPECT_EQ(keys.size(), 2u);  // deduplicated
  std::vector<Diagnostic> report = diags;
  report.push_back({"NL005", Severity::kError, "top:u9", "unknown cell", ""});
  EXPECT_EQ(suppress_baselined(report, keys), 3u);
  ASSERT_EQ(report.size(), 1u);  // only the new finding survives
  EXPECT_EQ(report[0].rule_id, "NL005");
  std::remove(path.c_str());

  std::set<std::string> missing;
  EXPECT_FALSE(read_baseline(path + ".does-not-exist", missing));
  EXPECT_TRUE(missing.empty());
}

TEST(RwlintCli, BaselineRecordsThenSuppressesThenCatchesNewFindings) {
  const std::string path = std::string(::testing::TempDir()) + "rwlint_baseline.txt";
  std::remove(path.c_str());
  const std::string broken = "--lib " RW_REPO_DIR "/examples/fixtures/mini.lib " RW_REPO_DIR
                             "/tests/fixtures/broken.v";
  int exit_code = -1;
  // 1. No baseline yet: the run records the findings and exits 0.
  std::string out = run_cli("--baseline " + path + " " + broken, exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(read_file(path).find("NL001"), std::string::npos);
  // 2. Baseline present: the same findings are suppressed.
  out = run_cli("--baseline " + path + " " + broken, exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("suppressed by baseline"), std::string::npos) << out;
  // 3. Re-recording against the clean fixture empties the baseline, so the
  // broken design fails again — baselines never mask *new* findings.
  out = run_cli("--baseline " + path + " --update-baseline --lib " RW_REPO_DIR
                "/examples/fixtures/mini.lib " RW_REPO_DIR "/examples/fixtures/clean.v",
                exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  out = run_cli("--baseline " + path + " " + broken, exit_code);
  EXPECT_EQ(exit_code, 2) << out;
  std::remove(path.c_str());
  // 4. --update-baseline without --baseline is a usage error.
  run_cli("--update-baseline " + broken, exit_code);
  EXPECT_EQ(exit_code, 64);
}

}  // namespace
}  // namespace rw::lint
