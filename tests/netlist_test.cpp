#include <gtest/gtest.h>

#include "charlib/factory.hpp"
#include "netlist/annotate.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sdf.hpp"
#include "netlist/verilog.hpp"
#include "sta/analysis.hpp"

namespace rw::netlist {
namespace {

/// Shared coarse-grid library with the handful of cells these tests use.
const liberty::Library& lib() {
  static charlib::LibraryFactory factory = [] {
    charlib::LibraryFactory::Options o;
    o.characterize.grid = charlib::OpcGrid::coarse();
    o.cell_subset = {"INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "DFF_X1", "BUF_X2"};
    return charlib::LibraryFactory(o);
  }();
  return factory.library(aging::AgingScenario::fresh());
}

Module small_design() {
  Module m("top");
  const NetId a = m.add_net("a");
  const NetId b = m.add_net("b");
  m.mark_input(a);
  m.mark_input(b);
  m.set_clock(m.add_net("clk"));
  NetlistBuilder builder(m, lib());
  const NetId n1 = builder.gate("NAND2_X1", {a, b});
  const NetId n2 = builder.gate("INV_X1", {n1});
  const NetId q = builder.flop("DFF_X1", n2);
  const NetId z = builder.gate("AND2_X1", {q, a});
  m.mark_output(z);
  return m;
}

TEST(Module, StructureQueries) {
  const Module m = small_design();
  EXPECT_EQ(m.instances().size(), 4u);
  EXPECT_EQ(m.inputs().size(), 3u);  // a, b, clk
  EXPECT_EQ(m.outputs().size(), 1u);
  const NetId a = m.find_net("a");
  EXPECT_EQ(m.driver(a), -1);
  // a feeds the NAND and the AND.
  EXPECT_EQ(m.sinks(a).size(), 2u);
  EXPECT_EQ(m.fanout_count(a), 2);
  m.validate();
}

TEST(Module, RejectsDoubleDriver) {
  Module m("t");
  const NetId x = m.add_net("x");
  const NetId y = m.add_net("y");
  m.mark_input(x);
  m.add_instance("g1", "INV_X1", {x}, y);
  EXPECT_THROW(m.add_instance("g2", "INV_X1", {x}, y), std::invalid_argument);
}

TEST(Module, ValidateCatchesUndrivenUsedNet) {
  Module m("t");
  const NetId x = m.add_net("x");
  const NetId y = m.add_net("y");
  m.add_instance("g1", "INV_X1", {x}, y);  // x undriven, not an input
  m.mark_output(y);
  EXPECT_THROW(m.validate(), std::runtime_error);
}

TEST(Module, RenameNet) {
  Module m("t");
  const NetId x = m.add_net("x");
  m.rename_net(x, "better");
  EXPECT_EQ(m.find_net("x"), kNoNet);
  EXPECT_EQ(m.find_net("better"), x);
  const NetId y = m.add_net("y");
  EXPECT_THROW(m.rename_net(y, "better"), std::invalid_argument);
}

TEST(Verilog, RoundTrip) {
  const Module m = small_design();
  const std::string text = write_verilog(m, lib());
  const Module parsed = parse_verilog(text, lib());

  EXPECT_EQ(parsed.name(), "top");
  EXPECT_EQ(parsed.instances().size(), m.instances().size());
  EXPECT_EQ(parsed.inputs().size(), m.inputs().size());
  EXPECT_EQ(parsed.outputs().size(), m.outputs().size());
  EXPECT_NE(parsed.clock(), kNoNet);
  EXPECT_EQ(parsed.net_name(parsed.clock()), "clk");
  parsed.validate();
  // Same structure: instance cells and connection names match.
  for (std::size_t i = 0; i < m.instances().size(); ++i) {
    EXPECT_EQ(parsed.instances()[i].cell, m.instances()[i].cell);
    EXPECT_EQ(parsed.net_name(parsed.instances()[i].out), m.net_name(m.instances()[i].out));
  }
}

TEST(Verilog, ParserRejectsUnknownCellAndPin) {
  EXPECT_THROW(parse_verilog("module t (input a); FOO u (.A(a)); endmodule", lib()),
               std::runtime_error);
  EXPECT_THROW(
      parse_verilog("module t (input a, output z); wire z; INV_X1 u (.BAD(a), .Z(z)); endmodule",
                    lib()),
      std::runtime_error);
}

TEST(Annotate, RenamesWithQuantizedDuties) {
  Module m = small_design();
  std::vector<InstanceDuty> duties(m.instances().size(), InstanceDuty{0.42, 0.58});
  duties[1] = InstanceDuty{1.0, 0.0};
  const auto corners = annotate_with_duty_cycles(m, duties);
  EXPECT_EQ(m.instances()[0].cell, "NAND2_X1_0.40_0.60");
  EXPECT_EQ(m.instances()[1].cell, "INV_X1_1.00_0.00");
  ASSERT_EQ(corners.size(), 2u);
}

TEST(Annotate, RejectsSizeMismatch) {
  Module m = small_design();
  EXPECT_THROW(annotate_with_duty_cycles(m, {}), std::invalid_argument);
}

TEST(Sdf, AnnotationAndWriter) {
  const Module m = small_design();
  const sta::Sta sta(m, lib());
  const DelayAnnotation ann = compute_delay_annotation(sta);
  ASSERT_EQ(ann.arcs.size(), m.instances().size());
  // Every combinational arc got a positive delay.
  EXPECT_GT(ann.arcs[0][0].out_rise_ps, 0.0);
  EXPECT_GT(ann.arcs[0][1].out_fall_ps, 0.0);
  // Flop CK entry holds the CK->Q delay.
  EXPECT_GT(ann.arcs[2][1].out_rise_ps, 5.0);

  const std::string sdf = write_sdf(m, lib(), ann);
  EXPECT_NE(sdf.find("(DELAYFILE"), std::string::npos);
  EXPECT_NE(sdf.find("(CELLTYPE \"NAND2_X1\")"), std::string::npos);
  EXPECT_NE(sdf.find("IOPATH A Z"), std::string::npos);
  EXPECT_NE(sdf.find("(TIMESCALE 1ps)"), std::string::npos);
}

}  // namespace
}  // namespace rw::netlist
